package optimize

// Cost is the optimize work ledger, the candidate-free counterpart of
// core.Cost: every counter a placement request touches, so the bench
// and EXPLAIN surfaces can compare a sweep against dense candidate
// enumeration pair for pair. All methods are nil-receiver safe; a nil
// ledger costs nothing on the hot path.
type Cost struct {
	// Objects is the population size optimized over; SweptRects and
	// IARects the rectangle counts entering each sweep layer (after
	// bounds clipping).
	Objects    int64 `json:"objects"`
	SweptRects int64 `json:"swept_rects"`
	IARects    int64 `json:"ia_rects"`
	// SweepEvents is the total sweep edge count, YSlots the size of
	// the compressed slot universe across both layers.
	SweepEvents int64 `json:"sweep_events"`
	YSlots      int64 `json:"y_slots"`

	// RefineCells counts branch-and-bound cell expansions,
	// RefineSolves exact point evaluations. PairsVisited is the sum of
	// cover-set sizes over exact evaluations and CellTests the
	// per-object cell bound tests — together the optimizer's
	// object-pair work, the number compared against a dense grid's
	// objects × candidates. PositionProbes counts PF evaluations.
	RefineCells    int64 `json:"refine_cells"`
	RefineSolves   int64 `json:"refine_solves"`
	PairsVisited   int64 `json:"pairs_visited"`
	CellTests      int64 `json:"cell_tests"`
	PositionProbes int64 `json:"position_probes"`

	// ShardRectSets is how many per-shard rect extractions fed the
	// global sweep (1 on the unsharded path).
	ShardRectSets int64 `json:"shard_rect_sets,omitempty"`

	// ResultCache is the serving-layer provenance: "hit", "miss" or
	// empty outside the server.
	ResultCache string `json:"result_cache,omitempty"`
}

// PairWork is the object-pair total to hold against a dense grid's
// objects × candidates product.
func (c *Cost) PairWork() int64 {
	if c == nil {
		return 0
	}
	return c.PairsVisited + c.CellTests
}

func (c *Cost) addObjects(n int64) {
	if c != nil {
		c.Objects += n
	}
}

func (c *Cost) addSwept(nib, ia int64) {
	if c != nil {
		c.SweptRects += nib
		c.IARects += ia
	}
}

func (c *Cost) addSweep(events, slots int64) {
	if c != nil {
		c.SweepEvents += events
		c.YSlots += slots
	}
}

func (c *Cost) addCell() {
	if c != nil {
		c.RefineCells++
	}
}

func (c *Cost) addSolve(pairs int64) {
	if c != nil {
		c.RefineSolves++
		c.PairsVisited += pairs
	}
}

func (c *Cost) addCellTests(n int64) {
	if c != nil {
		c.CellTests += n
	}
}

func (c *Cost) addProbes(n int64) {
	if c != nil {
		c.PositionProbes += n
	}
}

// AddShardRectSets records how many per-shard extractions fed the
// sweep; the serving layer calls it once per scatter.
func (c *Cost) AddShardRectSets(n int64) {
	if c != nil {
		c.ShardRectSets += n
	}
}
