package optimize

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"pinocchio/internal/geo"
)

// Event is one vertical rectangle edge in the sweep's event stream:
// at X the Y span [Y1, Y2] gains (Delta = +1) or loses (Delta = -1)
// one covering rectangle. Events are the sweep's wire unit — a shard
// can extract its objects' rects locally and ship the edges, and the
// gather side sweeps the concatenation (coverage is additive over any
// partition of the population, so a single global sweep over merged
// events is exact; per-shard sweep maxima are NOT mergeable, the same
// caveat that keeps the VO family off the scatter path).
type Event struct {
	X      float64
	Y1, Y2 float64
	Delta  int8
}

// less orders events canonically: X ascending, opening edges before
// closing edges at the same X (rect boundaries are closed, so two
// rects that only touch do overlap on the shared edge), then the Y
// span for determinism.
func less(a, b Event) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Delta != b.Delta {
		return a.Delta > b.Delta
	}
	if a.Y1 != b.Y1 {
		return a.Y1 < b.Y1
	}
	return a.Y2 < b.Y2
}

// SortEvents puts evs into canonical sweep order.
func SortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return less(evs[i], evs[j]) })
}

// EventsFromRects expands rectangles into their edge events. Empty
// (inverted) rects are skipped; degenerate rects (zero width or
// height) are kept — boundaries are closed, a point rect still covers
// its point.
func EventsFromRects(rects []geo.Rect) []Event {
	evs := make([]Event, 0, 2*len(rects))
	for _, r := range rects {
		if r.Min.X > r.Max.X || r.Min.Y > r.Max.Y {
			continue
		}
		evs = append(evs,
			Event{X: r.Min.X, Y1: r.Min.Y, Y2: r.Max.Y, Delta: +1},
			Event{X: r.Max.X, Y1: r.Min.Y, Y2: r.Max.Y, Delta: -1},
		)
	}
	return evs
}

// eventSize is the fixed wire size of one encoded event: three
// float64 coordinates plus the delta byte.
const eventSize = 3*8 + 1

// maxDecodeEvents caps a decoded stream: a count prefix beyond what
// the payload can physically hold is rejected before any allocation.
const maxDecodeEvents = 1 << 28

// EncodeEvents serializes events: a uvarint count followed by
// fixed-width records (little-endian float bits, delta byte).
func EncodeEvents(evs []Event) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(evs)*eventSize)
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	for _, e := range evs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Y1))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Y2))
		buf = append(buf, byte(e.Delta))
	}
	return buf
}

// DecodeEvents parses an encoded event stream, validating every
// record: finite coordinates, ordered Y span, delta ±1, and an exact
// length match. It never panics on arbitrary input.
func DecodeEvents(data []byte) ([]Event, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("optimize: bad event count prefix")
	}
	rest := data[used:]
	if n > maxDecodeEvents || uint64(len(rest)) != n*eventSize {
		return nil, fmt.Errorf("optimize: event payload %d bytes, want %d events x %d",
			len(rest), n, eventSize)
	}
	evs := make([]Event, n)
	for i := range evs {
		rec := rest[i*eventSize:]
		e := Event{
			X:     math.Float64frombits(binary.LittleEndian.Uint64(rec)),
			Y1:    math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
			Y2:    math.Float64frombits(binary.LittleEndian.Uint64(rec[16:])),
			Delta: int8(rec[24]),
		}
		if err := e.check(); err != nil {
			return nil, fmt.Errorf("optimize: event %d: %w", i, err)
		}
		evs[i] = e
	}
	return evs, nil
}

// check validates one event's invariants.
func (e Event) check() error {
	for _, v := range [3]float64{e.X, e.Y1, e.Y2} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite coordinate %v", v)
		}
	}
	if e.Y1 > e.Y2 {
		return fmt.Errorf("inverted y span [%v, %v]", e.Y1, e.Y2)
	}
	if e.Delta != 1 && e.Delta != -1 {
		return fmt.Errorf("delta %d not ±1", e.Delta)
	}
	return nil
}
