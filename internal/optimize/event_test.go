package optimize

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"pinocchio/internal/geo"
)

func TestEventCodecRoundTrip(t *testing.T) {
	evs := EventsFromRects([]geo.Rect{
		{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 2, Y: 3}},
		{Min: geo.Point{X: -1.5, Y: 0.25}, Max: geo.Point{X: -1.5, Y: 0.25}}, // point rect
		{Min: geo.Point{X: 4, Y: -2}, Max: geo.Point{X: 9, Y: -2}},           // zero height
	})
	got, err := DecodeEvents(EncodeEvents(evs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, evs)
	}
}

func TestEventCodecRejects(t *testing.T) {
	bad := []Event{
		{X: math.NaN(), Y1: 0, Y2: 1, Delta: 1},
		{X: 0, Y1: math.Inf(1), Y2: 1, Delta: 1},
		{X: 0, Y1: 2, Y2: 1, Delta: 1},
		{X: 0, Y1: 0, Y2: 1, Delta: 0},
		{X: 0, Y1: 0, Y2: 1, Delta: 3},
	}
	for i, e := range bad {
		if _, err := DecodeEvents(EncodeEvents([]Event{e})); err == nil {
			t.Errorf("case %d: decode accepted invalid event %+v", i, e)
		}
	}
	if _, err := DecodeEvents(nil); err == nil {
		t.Error("decode accepted empty input")
	}
	// A count prefix claiming more events than the payload holds must
	// be rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0x07}
	if _, err := DecodeEvents(huge); err == nil {
		t.Error("decode accepted oversized count prefix")
	}
	// Trailing garbage after the declared events is an error too.
	enc := append(EncodeEvents([]Event{{X: 1, Y1: 0, Y2: 1, Delta: 1}}), 0x00)
	if _, err := DecodeEvents(enc); err == nil {
		t.Error("decode accepted trailing bytes")
	}
}

func TestEventOrdering(t *testing.T) {
	evs := []Event{
		{X: 2, Y1: 0, Y2: 1, Delta: -1},
		{X: 1, Y1: 5, Y2: 6, Delta: -1},
		{X: 1, Y1: 0, Y2: 1, Delta: 1}, // same X as above: open must sort first
		{X: 0, Y1: 0, Y2: 1, Delta: 1},
	}
	SortEvents(evs)
	if !sort.SliceIsSorted(evs, func(i, j int) bool { return less(evs[i], evs[j]) }) {
		t.Fatalf("not sorted: %v", evs)
	}
	if evs[1].Delta != 1 || evs[1].X != 1 {
		t.Fatalf("opening edge must precede closing edge at equal X: %v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if less(evs[i], evs[i-1]) {
			t.Fatalf("order not total at %d: %v", i, evs)
		}
	}
}

// FuzzEventCodec holds the wire codec to its contract on arbitrary
// bytes: decoding never panics, and anything that decodes re-encodes
// to a byte-identical stream (the canonical fixed point the shard
// shipping path relies on).
func FuzzEventCodec(f *testing.F) {
	f.Add(EncodeEvents(nil))
	f.Add(EncodeEvents([]Event{{X: 1, Y1: -2, Y2: 3, Delta: 1}}))
	f.Add(EncodeEvents(EventsFromRects([]geo.Rect{
		{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1, Y: 1}},
	})))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeEvents(data)
		if err != nil {
			return
		}
		enc := EncodeEvents(evs)
		back, err := DecodeEvents(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(back, evs) {
			t.Fatalf("codec not a fixed point:\n got %v\nwant %v", back, evs)
		}
		// Sorting is deterministic and idempotent over decoded streams.
		SortEvents(evs)
		if !sort.SliceIsSorted(evs, func(i, j int) bool { return less(evs[i], evs[j]) }) {
			t.Fatalf("SortEvents left events unsorted")
		}
	})
}
