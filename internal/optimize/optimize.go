// Package optimize answers the candidate-free placement question:
// given the moving objects and a PF/τ, *where* should a new facility
// go? Unlike every solver in internal/core it takes no candidate set Γ
// — the answer is a point (and the region around it), found by a
// MaxRS-style plane sweep over per-object influence rectangles
// followed by exact branch-and-bound refinement.
//
// The construction rests on the two region lemmas the pruning layer
// already uses (internal/object, paper §4.2):
//
//   - NIB box (upper bound): a point outside MBR(O) expanded by
//     μ = minMaxRadius(τ, n) cannot influence O. Hence at any point c
//     the number of NIB boxes covering c bounds inf(c) from above.
//   - IA box (lower bound): a box inscribed in the influence-arcs
//     region; every point of it certainly influences O. The IA cover
//     count at c bounds inf(c) from below.
//
// Sweeping the NIB boxes (Choi/Chung/Tao-style interval sweep over
// compressed Y slots) yields the per-slab maximum cover — a sound
// pointwise upper bound over the whole plane — and the top regions
// attaining it. Refinement then runs branch-and-bound over the slabs:
// cells are discarded only when their (sound) upper bound cannot beat
// the best exactly-evaluated point, so on completion the result
// provably dominates every possible placement — in particular any
// dense candidate grid (see DESIGN.md §14 for the argument).
package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"

	"pinocchio/internal/geo"
	"pinocchio/internal/object"
	"pinocchio/internal/obs"
	"pinocchio/internal/probfn"
)

// Defaults for the tunables a zero Problem leaves unset.
const (
	// DefaultTopR is how many top sweep regions are reported and used
	// to seed the refinement incumbent.
	DefaultTopR = 8
	// DefaultMaxRefine caps branch-and-bound cell expansions; hitting
	// it yields an unresolved result with a non-zero bound gap (the
	// incumbent is still polished by local search). Sized so a served
	// request over the full Gowalla-like preset stays near a minute on
	// one core; batch callers raise it explicitly.
	DefaultMaxRefine = 20000
	// seedSamples is how many mass-weighted position samples seed the
	// refinement incumbent alongside the sweep layers' argmax regions.
	seedSamples = 64
)

// ErrNoObjects is returned when there is nothing to optimize over.
var ErrNoObjects = errors.New("optimize: no objects")

// Problem is one candidate-free placement request. Either Objects or
// a pre-collected Rects slice must be set; the sharded serving path
// extracts rects per shard in parallel and passes the concatenation.
type Problem struct {
	Objects []*object.Object
	PF      probfn.Func
	// Tau is the influence threshold in (0,1).
	Tau float64

	// Bounds optionally constrains the placement to a rectangle (a
	// zoning constraint). Nil means anywhere.
	Bounds *geo.Rect

	// TopR is how many top sweep regions to report and refine-seed
	// (default DefaultTopR).
	TopR int
	// MaxRefine caps refinement cell expansions (default
	// DefaultMaxRefine). Negative disables refinement entirely: the
	// result is the sweep bound with the best seed's exact influence.
	MaxRefine int
	// MinCell is the refinement resolution floor: cells with a half
	// diagonal at or below it are evaluated but not subdivided. 0
	// derives a floor from the root extent.
	MinCell float64

	// Rects, when non-nil, skips extraction and sweeps these instead
	// of deriving them from Objects. Used by the scatter path: rect
	// extraction parallelizes over shards, the sweep is global.
	Rects []ObjectRects

	// Ctx cancels the sweep and refinement cooperatively.
	Ctx context.Context
	// Obs attaches phase spans under this parent; nil disables.
	Obs *obs.Span
	// TraceID stamps the root span.
	TraceID string
	// Cost, when non-nil, accrues the work ledger.
	Cost *Cost
}

// Region is one swept region with its cover count: for NIB regions
// the count is an upper bound on inf on the region's interior
// (boundary columns can touch additional boxes), for IA regions a
// guaranteed lower bound. Sound plane-wide bounds come from the slab
// layer (SweepMax / UpperBound), not from Regions.
type Region struct {
	Rect  geo.Rect `json:"rect"`
	Count int      `json:"count"`
}

// Result is the placement answer. The bound invariant, proved in
// DESIGN.md §14 and enforced by the property tests: for every point p
// (inside Bounds when set), inf(p) ≤ UpperBound; when Resolved,
// UpperBound == BestInfluence and BestPoint is a global optimum.
type Result struct {
	// BestPoint is the best placement found; BestInfluence its exact
	// influence (number of objects influenced with probability ≥ τ).
	BestPoint     geo.Point `json:"best_point"`
	BestInfluence int       `json:"best_influence"`
	// BestCell is the refinement cell the best point was found in.
	BestCell geo.Rect `json:"best_cell"`

	// UpperBound bounds inf at every feasible point; Gap is
	// UpperBound − BestInfluence (0 when Resolved).
	UpperBound int  `json:"upper_bound"`
	Gap        int  `json:"gap"`
	Resolved   bool `json:"resolved"`

	// SweepMax is the maximum NIB-box cover count (the sweep's global
	// upper bound before refinement); IAMax the maximum IA-box cover
	// count (a guaranteed-influence lower bound before refinement).
	SweepMax int `json:"sweep_max"`
	IAMax    int `json:"ia_max"`

	// Regions are the top sweep regions by NIB cover count;
	// IARegions the guaranteed-influence counterparts.
	Regions   []Region `json:"regions,omitempty"`
	IARegions []Region `json:"ia_regions,omitempty"`

	// Objects is the number of objects optimized over.
	Objects int `json:"objects"`
}

// ObjectRects is one object's influence geometry, the unit the sweep
// consumes. NIB is the upper-bound rectangle (MBR expanded by μ), IA
// the inscribed guaranteed-influence rectangle (valid only when
// HasIA).
type ObjectRects struct {
	Obj    *object.Object
	Radius float64 // minMaxRadius(τ, n)
	NIB    geo.Rect
	IA     geo.Rect
	HasIA  bool
}

// CollectRects derives the influence rectangles for a set of objects
// under pf/τ. The radius table memoizes minMaxRadius per position
// count, exactly as the pruning layer does.
func CollectRects(objects []*object.Object, pf probfn.Func, tau float64) []ObjectRects {
	rt := object.NewRadiusTable(pf, tau)
	out := make([]ObjectRects, 0, len(objects))
	for _, o := range objects {
		mu := rt.Get(o.N())
		reg := object.NewRegions(o, mu)
		r := ObjectRects{Obj: o, Radius: mu, NIB: reg.NIBBox()}
		if reg.IANonEmpty() {
			r.IA, r.HasIA = iaBox(o.MBR(), mu)
		}
		out = append(out, r)
	}
	return out
}

// iaBox returns an axis-aligned box inscribed in the influence-arcs
// region: every point of the box is within μ of every point of the
// MBR. The box is centered on the MBR with a symmetric margin s per
// side; the binding constraint is the box corner against the opposite
// MBR corner, (w+s)² + (h+s)² ≤ μ². Callers must have checked
// IANonEmpty (μ ≥ half-diagonal); when the symmetric-margin box
// degenerates (very elongated MBRs) the MBR center alone — whose max
// distance to the MBR is exactly the half-diagonal — is returned as a
// point box.
func iaBox(mbr geo.Rect, mu float64) (geo.Rect, bool) {
	w, h := mbr.Width(), mbr.Height()
	c := mbr.Center()
	if d := 2*mu*mu - (w-h)*(w-h); d >= 0 {
		s := (math.Sqrt(d) - (w + h)) / 2
		hx, hy := w/2+s, h/2+s
		if hx >= 0 && hy >= 0 {
			return geo.Rect{
				Min: geo.Point{X: c.X - hx, Y: c.Y - hy},
				Max: geo.Point{X: c.X + hx, Y: c.Y + hy},
			}, true
		}
	}
	return geo.Rect{Min: c, Max: c}, true
}

// clip intersects r with bounds; ok is false when they are disjoint.
func clip(r, bounds geo.Rect) (geo.Rect, bool) {
	if !r.Intersects(bounds) {
		return geo.Rect{}, false
	}
	return geo.Rect{
		Min: geo.Point{X: math.Max(r.Min.X, bounds.Min.X), Y: math.Max(r.Min.Y, bounds.Min.Y)},
		Max: geo.Point{X: math.Min(r.Max.X, bounds.Max.X), Y: math.Min(r.Max.Y, bounds.Max.Y)},
	}, true
}

// validate checks the problem and fills defaults in place.
func (p *Problem) validate() error {
	if p.PF == nil {
		return errors.New("optimize: nil PF")
	}
	if !(p.Tau > 0 && p.Tau < 1) {
		return fmt.Errorf("optimize: tau %v outside (0,1)", p.Tau)
	}
	if p.Rects == nil && len(p.Objects) == 0 {
		return ErrNoObjects
	}
	if p.Bounds != nil && (p.Bounds.Min.X > p.Bounds.Max.X || p.Bounds.Min.Y > p.Bounds.Max.Y) {
		return fmt.Errorf("optimize: inverted bounds %v", *p.Bounds)
	}
	if p.TopR <= 0 {
		p.TopR = DefaultTopR
	}
	if p.MaxRefine == 0 {
		p.MaxRefine = DefaultMaxRefine
	}
	return nil
}

// ctxErr reports the problem context's current error.
func (p *Problem) ctxErr() error {
	if p.Ctx == nil {
		return nil
	}
	return p.Ctx.Err()
}

// Optimize finds the best placement: collect rects (unless supplied),
// sweep the NIB layer for per-slab upper bounds and the IA layer for
// guaranteed seeds, then refine by branch-and-bound until the bound
// closes, the budget runs out, or the context cancels.
func Optimize(p *Problem) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	root := p.Obs.Child("optimize")
	if p.TraceID != "" {
		root.SetAttr("trace_id", p.TraceID)
	}
	defer root.End()

	rs := p.Rects
	if rs == nil {
		sp := root.Child("collect-rects")
		rs = CollectRects(p.Objects, p.PF, p.Tau)
		sp.End()
	}
	p.Cost.addObjects(int64(len(rs)))

	res := &Result{Objects: len(rs), Resolved: true}
	if len(rs) == 0 {
		if p.Bounds != nil {
			res.BestPoint = p.Bounds.Center()
		}
		return res, nil
	}

	// Assemble the two sweep layers, clipping to Bounds when set. An
	// object whose NIB box misses the bounds can never matter inside
	// them; it is dropped from the refinement population too.
	nib := make([]geo.Rect, 0, len(rs))
	ia := make([]geo.Rect, 0, len(rs))
	live := make([]int32, 0, len(rs))
	for i := range rs {
		r := rs[i].NIB
		if p.Bounds != nil {
			var ok bool
			if r, ok = clip(r, *p.Bounds); !ok {
				continue
			}
		}
		nib = append(nib, r)
		live = append(live, int32(i))
		if rs[i].HasIA {
			r = rs[i].IA
			if p.Bounds != nil {
				var ok bool
				if r, ok = clip(r, *p.Bounds); !ok {
					continue
				}
			}
			ia = append(ia, r)
		}
	}
	p.Cost.addSwept(int64(len(nib)), int64(len(ia)))
	if len(nib) == 0 {
		if p.Bounds != nil {
			res.BestPoint = p.Bounds.Center()
		}
		return res, nil
	}

	sp := root.Child("sweep")
	nibSweep, err := sweepRects(p.Ctx, nib, p.TopR, p.Cost)
	if err != nil {
		sp.End()
		return nil, err
	}
	iaSweep, err := sweepRects(p.Ctx, ia, p.TopR, p.Cost)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetAttr("sweep_max", nibSweep.max)
	sp.SetAttr("ia_max", iaSweep.max)
	sp.End()

	res.SweepMax = nibSweep.max
	res.IAMax = iaSweep.max
	res.Regions = nibSweep.regions
	res.IARegions = iaSweep.regions

	// Seed the incumbent with the centers of every reported region
	// from both layers — the IA argmax guarantees an exact influence
	// of at least IAMax, so refinement starts with a tight floor.
	seeds := make([]geo.Point, 0, len(nibSweep.regions)+len(iaSweep.regions)+seedSamples)
	for _, rg := range nibSweep.regions {
		seeds = append(seeds, rg.Rect.Center())
	}
	for _, rg := range iaSweep.regions {
		seeds = append(seeds, rg.Rect.Center())
	}
	// Mass-weighted seeds: a uniform stride over the population's
	// check-ins lands evaluations where positions concentrate, which
	// is where high-influence placements live. The sweep layers bound
	// where influence CAN be high; these say where the mass actually
	// is — on multi-hotspot data the NIB-cover argmax alone can sit
	// over the wrong hotspot, and branch-and-bound then spends its
	// whole budget ruling out near-ties instead of improving the
	// incumbent.
	total := 0
	for _, idx := range live {
		total += len(rs[idx].Obj.Positions)
	}
	if total > 0 {
		stride := total/seedSamples + 1
		k := 0
		for _, idx := range live {
			for _, pos := range rs[idx].Obj.Positions {
				if k%stride == 0 && (p.Bounds == nil || p.Bounds.ContainsPoint(pos)) {
					seeds = append(seeds, pos)
				}
				k++
			}
		}
	}

	sp = root.Child("refine")
	ref, err := refine(p, rs, live, nibSweep.slabs, seeds)
	if p.Cost != nil {
		sp.SetAttr("cells", p.Cost.RefineCells)
		sp.SetAttr("solves", p.Cost.RefineSolves)
	}
	sp.SetAttr("resolved", ref.resolved)
	sp.End()
	if err != nil {
		return nil, err
	}
	res.BestPoint = ref.bestPoint
	res.BestInfluence = ref.bestInf
	res.BestCell = ref.bestCell
	res.Resolved = ref.resolved
	res.UpperBound = ref.outstanding
	if res.Resolved || res.UpperBound < res.BestInfluence {
		res.UpperBound = res.BestInfluence
	}
	res.Gap = res.UpperBound - res.BestInfluence
	root.SetAttr("best_influence", res.BestInfluence)
	root.SetAttr("resolved", res.Resolved)
	return res, nil
}
