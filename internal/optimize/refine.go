package optimize

import (
	"container/heap"
	"math"

	"pinocchio/internal/geo"
	"pinocchio/internal/object"
)

// Refinement turns the sweep's slab bounds into an exact answer by
// branch-and-bound. A cell (axis-aligned rectangle) carries a sound
// upper bound on inf anywhere inside it; cells are expanded
// best-bound-first, the exact influence at each cell's center raises
// the incumbent, and a cell is discarded only when its bound cannot
// beat the incumbent. Because every discard is justified by a sound
// bound and the initial slabs tile everything that can have non-zero
// influence, a run that drains the queue proves the incumbent is a
// global optimum — in particular at least as good as any finite
// candidate set, which is what the dominance property test and the
// dense-grid bench hold it to.
//
// Per-object cell tests, cheapest first (each proves "no point of the
// cell is influenced by O", which inherits to subcells, so failing
// objects leave the cover set entirely):
//
//  1. NIB box vs cell intersection (the sweep's own geometry);
//  2. exact Euclidean distance between cell and MBR vs μ (tighter
//     than the box test at corners);
//  3. for cells small against μ: a probabilistic bound — shrink every
//     position distance by the cell half-diagonal r and evaluate
//     1 − Π(1 − PF(max(0, d(p, center) − r))). PF is non-increasing,
//     so this dominates Pr_c(O) for every c in the cell; as r → 0 it
//     converges to the exact cumulative probability at the center,
//     which is what closes the bound gap at fine scales.

// refineResult is what the branch-and-bound returns.
type refineResult struct {
	bestPoint   geo.Point
	bestInf     int
	bestCell    geo.Rect
	resolved    bool
	outstanding int
}

// cell is one branch-and-bound node. A nil cover means "the full live
// population" (initial slabs), avoiding len(slabs) copies of the root
// index set.
type cell struct {
	rect  geo.Rect
	ub    int
	cover []int32
}

// cellHeap orders cells by upper bound, best first.
type cellHeap []cell

func (h cellHeap) Len() int           { return len(h) }
func (h cellHeap) Less(i, j int) bool { return h[i].ub > h[j].ub }
func (h cellHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x any)        { *h = append(*h, x.(cell)) }
func (h *cellHeap) Pop() any          { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

// refine runs the branch-and-bound over the sweep's slabs. live holds
// the indices into rs that survive bounds clipping; seeds are exactly
// evaluated first so the queue starts against a strong incumbent.
func refine(p *Problem, rs []ObjectRects, live []int32, slabs []slab, seeds []geo.Point) (refineResult, error) {
	res := refineResult{bestInf: -1}
	seen := make(map[geo.Point]bool, len(seeds))
	for _, s := range seeds {
		if seen[s] {
			continue
		}
		seen[s] = true
		if err := p.ctxErr(); err != nil {
			return res, err
		}
		inf := exactAt(p, rs, live, s)
		if inf > res.bestInf {
			res.bestInf, res.bestPoint = inf, s
			res.bestCell = geo.Rect{Min: s, Max: s}
		}
	}
	if res.bestInf < 0 {
		res.bestInf = 0
	}

	var root geo.Rect
	maxSlab := 0
	for i, sl := range slabs {
		if i == 0 {
			root = sl.rect
		} else {
			root = root.Union(sl.rect)
		}
		if sl.ub > maxSlab {
			maxSlab = sl.ub
		}
	}
	if p.MaxRefine < 0 {
		// Refinement disabled: the answer is the best seed against the
		// raw sweep bound.
		res.outstanding = max(maxSlab, res.bestInf)
		res.resolved = res.outstanding <= res.bestInf
		return res, nil
	}

	minCell := p.MinCell
	if minCell <= 0 {
		minCell = root.HalfDiagonal() * 1e-9
	}

	h := make(cellHeap, 0, len(slabs))
	for _, sl := range slabs {
		if sl.ub > res.bestInf {
			h = append(h, cell{rect: sl.rect, ub: sl.ub})
		}
	}
	heap.Init(&h)

	// maxClosedUB tracks cells evaluated but not subdivided (resolution
	// floor): their bound stays outstanding unless the incumbent
	// eventually covers it.
	maxClosedUB := 0
	budget := false
	pops := 0
	for h.Len() > 0 {
		if err := p.ctxErr(); err != nil {
			return res, err
		}
		if h[0].ub <= res.bestInf {
			// Best-first order: nothing left can beat the incumbent.
			break
		}
		if pops >= p.MaxRefine {
			budget = true
			break
		}
		c := heap.Pop(&h).(cell)
		pops++
		p.Cost.addCell()

		center := c.rect.Center()
		if inf := exactAt(p, rs, coverOf(c, live), center); inf > res.bestInf {
			res.bestInf, res.bestPoint, res.bestCell = inf, center, c.rect
		}
		if c.rect.HalfDiagonal() <= minCell {
			if c.ub > maxClosedUB {
				maxClosedUB = c.ub
			}
			continue
		}
		stuck := false
		for _, q := range halves(c.rect) {
			if q == c.rect {
				// Floating-point degenerate split: subdividing makes no
				// progress, treat as closed below.
				stuck = true
				continue
			}
			ub, cover := cellBound(p, rs, coverOf(c, live), q)
			if ub > res.bestInf {
				heap.Push(&h, cell{rect: q, ub: ub, cover: cover})
			}
		}
		if stuck && c.ub > maxClosedUB {
			maxClosedUB = c.ub
		}
	}

	res.outstanding = res.bestInf
	if budget && h.Len() > 0 && h[0].ub > res.outstanding {
		res.outstanding = h[0].ub
	}
	if maxClosedUB > res.outstanding {
		res.outstanding = maxClosedUB
	}
	if len(slabs) > 0 && res.outstanding > res.bestInf {
		// Budget or resolution-floor break: the incumbent came from cell
		// centers, which sample the peak but rarely sit on it. A short
		// pattern search climbs the local maximum exactly; it can only
		// raise the incumbent, so the outstanding bound stays sound.
		if err := polish(p, rs, live, root, &res); err != nil {
			return res, err
		}
	}
	res.resolved = res.outstanding <= res.bestInf
	return res, nil
}

// polish hill-climbs the incumbent with a multi-scale compass search:
// at each step size, evaluate the 8 compass neighbors of the best
// point, move to any improvement, halve the step when none improves.
// Every probe is an exact influence evaluation, so the incumbent only
// moves to provably better placements.
func polish(p *Problem, rs []ObjectRects, live []int32, root geo.Rect, res *refineResult) error {
	step := root.HalfDiagonal() / 16
	if bc := res.bestCell.HalfDiagonal(); bc > 0 && bc < step {
		step = bc
	}
	floor := root.HalfDiagonal() * 1e-7
	for step > floor {
		if err := p.ctxErr(); err != nil {
			return err
		}
		moved := false
		for _, d := range [8][2]float64{
			{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1},
		} {
			c := geo.Point{X: res.bestPoint.X + d[0]*step, Y: res.bestPoint.Y + d[1]*step}
			if p.Bounds != nil {
				c = clampTo(c, *p.Bounds)
			}
			if c == res.bestPoint {
				continue
			}
			if inf := exactAt(p, rs, live, c); inf > res.bestInf {
				res.bestInf, res.bestPoint = inf, c
				res.bestCell = geo.Rect{Min: c, Max: c}
				if res.bestInf > res.outstanding {
					res.outstanding = res.bestInf
				}
				moved = true
				break
			}
		}
		if !moved {
			step /= 2
		}
	}
	return nil
}

// clampTo projects a point into a rect.
func clampTo(c geo.Point, r geo.Rect) geo.Point {
	c.X = math.Min(math.Max(c.X, r.Min.X), r.Max.X)
	c.Y = math.Min(math.Max(c.Y, r.Min.Y), r.Max.Y)
	return c
}

// coverOf resolves a cell's cover set (nil means the live root set).
func coverOf(c cell, live []int32) []int32 {
	if c.cover == nil {
		return live
	}
	return c.cover
}

// halves splits a rect at the midpoint of its longer dimension. The
// initial slabs are full-height strips; a quadrant split would keep
// their extreme aspect ratio forever, whereas halving the long side
// drives cells toward squares, which is when the distance-shrunk
// probabilistic bound starts to discriminate. Two children also cost
// half the bound scans of four.
func halves(r geo.Rect) [2]geo.Rect {
	c := r.Center()
	if r.Max.X-r.Min.X >= r.Max.Y-r.Min.Y {
		return [2]geo.Rect{
			{Min: r.Min, Max: geo.Point{X: c.X, Y: r.Max.Y}},
			{Min: geo.Point{X: c.X, Y: r.Min.Y}, Max: r.Max},
		}
	}
	return [2]geo.Rect{
		{Min: r.Min, Max: geo.Point{X: r.Max.X, Y: c.Y}},
		{Min: geo.Point{X: r.Min.X, Y: c.Y}, Max: r.Max},
	}
}

// cellBound computes a sound upper bound on inf anywhere in rect and
// the surviving cover set, scanning only the parent's cover.
func cellBound(p *Problem, rs []ObjectRects, parent []int32, rect geo.Rect) (int, []int32) {
	half := rect.HalfDiagonal()
	center := rect.Center()
	var cover []int32
	var tests, probes int64
	for _, idx := range parent {
		r := &rs[idx]
		tests++
		if !r.NIB.Intersects(rect) {
			continue
		}
		mbr := r.Obj.MBR()
		if rectMinDistSq(rect, mbr) > r.Radius*r.Radius {
			continue
		}
		// The probabilistic test costs a position scan; only run it
		// once the cell is small against the object's radius, where it
		// has discriminating power. (The bound is sound at any size —
		// the gate only skips scans that cannot prune.)
		if half <= r.Radius {
			ok, n := probReachable(p, r.Obj.Positions, center, half)
			probes += n
			if !ok {
				continue
			}
		}
		cover = append(cover, idx)
	}
	p.Cost.addCellTests(tests)
	p.Cost.addProbes(probes)
	return len(cover), cover
}

// probReachable reports whether any point of a cell (center, half
// diagonal r) could be influenced by an object with the given
// positions: the cumulative probability with every distance shrunk by
// r must reach τ. Early exit once the bound clears τ — the common
// case for nearby objects.
func probReachable(p *Problem, positions []geo.Point, center geo.Point, r float64) (bool, int64) {
	q := 1.0
	var probes int64
	for _, pos := range positions {
		probes++
		d := pos.Dist(center) - r
		if d < 0 {
			d = 0
		}
		q *= 1 - p.PF.Prob(d)
		if 1-q >= p.Tau {
			return true, probes
		}
	}
	return 1-q >= p.Tau, probes
}

// exactAt computes the exact influence at point c over the cover set:
// the number of objects with cumulative probability ≥ τ, via the same
// classify-then-validate path the core solvers use. Validation stops
// early once the partial product clears τ (Lemma 4 / Strategy 2) —
// the remaining factors can only push the probability higher.
func exactAt(p *Problem, rs []ObjectRects, cover []int32, c geo.Point) int {
	inf := 0
	var probes int64
	for _, idx := range cover {
		r := &rs[idx]
		reg := object.Regions{MBR: r.Obj.MBR(), Radius: r.Radius}
		switch reg.Classify(c) {
		case object.Influenced:
			inf++
		case object.NeedsValidation:
			q := 1.0
			for _, pos := range r.Obj.Positions {
				probes++
				q *= 1 - p.PF.Prob(c.Dist(pos))
				if 1-q >= p.Tau {
					inf++
					break
				}
			}
		}
	}
	p.Cost.addSolve(int64(len(cover)))
	p.Cost.addProbes(probes)
	return inf
}

// rectMinDistSq is the squared Euclidean distance between two rects
// (0 when they intersect).
func rectMinDistSq(a, b geo.Rect) float64 {
	dx := math.Max(0, math.Max(a.Min.X-b.Max.X, b.Min.X-a.Max.X))
	dy := math.Max(0, math.Max(a.Min.Y-b.Max.Y, b.Min.Y-a.Max.Y))
	return dx*dx + dy*dy
}
