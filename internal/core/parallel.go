package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// PinocchioParallel is a data-parallel PINOCCHIO (Algorithm 2): the
// per-object pruning + validation loop shards objects across workers.
// Each worker accumulates a private influence vector and Stats, merged
// at the end, so there is no contention on the hot path. The candidate
// R-tree and the minMaxRadius table are built once and read
// concurrently (searches do not mutate the tree; the radius table is
// pre-populated before the workers start).
//
// Results are identical to Pinocchio; only wall-clock time differs.
func PinocchioParallel(p *Problem, workers int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	p.stampTrace()
	start := time.Now()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := len(p.Candidates)
	res := &Result{Influences: make([]int, m)}
	st := &res.Stats
	st.PairsTotal = int64(len(p.Objects)) * int64(m)

	// buildA2D pre-computes every per-object radius, so the shared
	// table is read-only afterwards; a prebuilt plan is immutable by
	// construction and shared the same way.
	a2d, tree, prunes := p.solveState(st)

	if workers > len(a2d) {
		workers = len(a2d)
	}
	type shardResult struct {
		influences []int
		stats      Stats
		cost       *Cost
		err        error
	}
	results := make([]shardResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker gets its own span subtree, so the per-shard
			// prune/validate split is contention-free and visible in
			// the trace. Each worker also gets its own canceller: the
			// shared context's Err is the only state they all touch.
			workerSp := p.Obs.Child(fmt.Sprintf("worker-%d", w))
			pruneSp := workerSp.Child("prune")
			valSp := workerSp.Child("validate")
			valTimer := valSp.Sampler(validateSampleLog)
			scanStart := pruneSp.StartTimer()
			// A private Cost ledger per shard keeps the per-candidate
			// tables contention-free; the parent merges them below.
			local := shardResult{influences: make([]int, m), cost: p.Cost.workerChild()}
			lst := &local.stats
			cc := canceller{ctx: p.Ctx}
			for k := w; k < len(a2d); k += workers {
				e := a2d[k]
				touched, ia, arcs := scanObject(tree, prunes, k, e, local.cost.nodeCounter(),
					func(cand int) {
						local.cost.pruneIA(cand)
						local.influences[cand]++
					},
					func(cand int, out *valOutcome) {
						if local.err != nil {
							return
						}
						if local.err = cc.tick(); local.err != nil {
							return
						}
						lst.Validated++
						local.cost.validated(cand, out != nil)
						valTimer.Start()
						var inf bool
						if out != nil {
							inf = replayEarlyStop(out, e.obj.N(), lst)
						} else {
							inf = influencedEarlyStop(p.PF, p.Tau, p.Candidates[cand], e.obj.Positions, lst)
						}
						if inf {
							local.influences[cand]++
						}
						valTimer.Stop()
					})
				lst.PrunedByIA += ia
				lst.PrunedByNIB += int64(m) - touched
				local.cost.addNIB(arcs, int64(m)-touched-arcs)
				if local.err == nil {
					local.err = cc.tick()
				}
				if local.err != nil {
					break
				}
			}
			valTimer.Finish()
			pruneSp.EndExclusive(scanStart, valSp)
			valSp.End()
			workerSp.SetAttr("stats", local.stats)
			workerSp.End()
			results[w] = local
		}(w)
	}
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for j, v := range r.influences {
			res.Influences[j] += v
		}
		st.Merge(r.stats)
		p.Cost.merge(r.cost)
	}
	res.BestIndex, res.BestInfluence = argmax(res.Influences)
	p.Cost.finishExact(p, st, res.Influences, res.BestIndex)
	res.Trace = p.Obs
	finishSolve(p.Obs, "PIN-PAR", start, st, p.Cost)
	return res, nil
}
