package core

import (
	"runtime"
	"sync"
)

// PinocchioParallel is a data-parallel PINOCCHIO (Algorithm 2): the
// per-object pruning + validation loop shards objects across workers.
// Each worker accumulates a private influence vector and Stats, merged
// at the end, so there is no contention on the hot path. The candidate
// R-tree and the minMaxRadius table are built once and read
// concurrently (searches do not mutate the tree; the radius table is
// pre-populated before the workers start).
//
// Results are identical to Pinocchio; only wall-clock time differs.
func PinocchioParallel(p *Problem, workers int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := len(p.Candidates)
	res := &Result{Influences: make([]int, m)}
	st := &res.Stats
	st.PairsTotal = int64(len(p.Objects)) * int64(m)

	// buildA2D pre-computes every per-object radius, so the shared
	// table is read-only afterwards.
	a2d := buildA2D(p, st)
	tree := p.candidateTree()

	if workers > len(a2d) {
		workers = len(a2d)
	}
	type shardResult struct {
		influences []int
		stats      Stats
	}
	results := make([]shardResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := shardResult{influences: make([]int, m)}
			lst := &local.stats
			for k := w; k < len(a2d); k += workers {
				e := a2d[k]
				touched, ia := pruneObject(tree, e,
					func(cand int) { local.influences[cand]++ },
					func(cand int) {
						lst.Validated++
						if influencedEarlyStop(p.PF, p.Tau, p.Candidates[cand], e.obj.Positions, lst) {
							local.influences[cand]++
						}
					})
				lst.PrunedByIA += ia
				lst.PrunedByNIB += int64(m) - touched
			}
			results[w] = local
		}(w)
	}
	wg.Wait()

	for _, r := range results {
		for j, v := range r.influences {
			res.Influences[j] += v
		}
		st.PrunedByIA += r.stats.PrunedByIA
		st.PrunedByNIB += r.stats.PrunedByNIB
		st.Validated += r.stats.Validated
		st.PositionProbes += r.stats.PositionProbes
		st.EarlyStops += r.stats.EarlyStops
	}
	res.BestIndex, res.BestInfluence = argmax(res.Influences)
	return res, nil
}
