package core

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// PinocchioVOTopT generalizes PINOCCHIO-VO from top-1 to top-t, the
// "top-t most influential sites" variant the related work ([1], [13])
// studies: it certifies the t most influential candidates without
// computing exact influence for the dominated rest.
//
// The bound machinery carries over: candidates are validated in
// (maxInf, minInf) heap order, and the loop stops when the heap top's
// upper bound falls below the t-th best certified influence — every
// remaining candidate is then dominated by t certified ones. Returned
// candidates are sorted by influence descending, ties by index.
func PinocchioVOTopT(p *Problem, t int) ([]Ranked, *Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if t <= 0 {
		return nil, nil, fmt.Errorf("core: top-t needs t ≥ 1, got %d", t)
	}
	m := len(p.Candidates)
	if t > m {
		t = m
	}
	if err := p.ctxErr(); err != nil {
		return nil, nil, err
	}
	p.stampTrace()

	start := time.Now()
	st := &Stats{PairsTotal: int64(len(p.Objects)) * int64(m)}
	a2d, tree, prunes := p.solveState(st)

	s := &voState{
		p:      p,
		cost:   p.Cost,
		minInf: make([]int, m),
		maxInf: make([]int, m),
		vs:     make([][]int, m),
		out:    make([][]*valOutcome, m),
	}
	pruneSp := p.Obs.Child("prune")
	cc := canceller{ctx: p.Ctx}
	for k, e := range a2d {
		k := k
		if err := cc.tick(); err != nil {
			pruneSp.End()
			return nil, nil, err
		}
		touched, ia, arcs := scanObject(tree, prunes, k, e, s.cost.nodeCounter(),
			func(cand int) {
				s.cost.pruneIA(cand)
				s.minInf[cand]++
			},
			func(cand int, out *valOutcome) {
				s.vs[cand] = append(s.vs[cand], k)
				s.out[cand] = append(s.out[cand], out)
			})
		st.PrunedByIA += ia
		st.PrunedByNIB += int64(m) - touched
		s.cost.addNIB(arcs, int64(m)-touched-arcs)
	}
	for c := 0; c < m; c++ {
		s.maxInf[c] = s.minInf[c] + len(s.vs[c])
	}
	pruneSp.End()

	ranked, err := s.runTopT(st, t)
	if err != nil {
		return nil, nil, err
	}
	s.cost.finishTopT(p, st, s.minInf, s.maxInf, ranked)
	finishSolve(p.Obs, "PIN-VO-TOPT", start, st, s.cost)
	return ranked, st, nil
}

// runTopT is the top-t counterpart of runValidation. certified holds
// candidates whose exact influence is known; the threshold is the t-th
// largest certified influence (0 until t are certified).
func (s *voState) runTopT(st *Stats, t int) ([]Ranked, error) {
	valSp := s.p.Obs.Child("validate")
	defer func() {
		valSp.SetAttr("heap_pops", st.HeapPops)
		valSp.End()
	}()
	m := len(s.p.Candidates)
	h := newCandHeap(s, m)

	certified := make([]Ranked, 0, t+1)
	// tthBest returns the current pruning threshold.
	tthBest := func() int {
		if len(certified) < t {
			return 0
		}
		return certified[len(certified)-1].Influence
	}
	insertCertified := func(r Ranked) {
		certified = append(certified, r)
		sort.Slice(certified, func(a, b int) bool {
			if certified[a].Influence != certified[b].Influence {
				return certified[a].Influence > certified[b].Influence
			}
			return certified[a].Index < certified[b].Index
		})
		if len(certified) > t {
			certified = certified[:t]
		}
	}

	cc := canceller{ctx: s.p.Ctx}
	for h.Len() > 0 {
		top := h.order[0]
		// Strict domination: a certified t-th best strictly above the
		// top's upper bound means no remaining candidate can enter the
		// top-t. (Equality keeps validating so ties are resolved
		// deterministically by exact influence and index.)
		if s.maxInf[top] < tthBest() {
			for _, c := range h.order {
				st.SkippedByBounds += int64(len(s.vs[c]))
				s.cost.skip(c, len(s.vs[c]))
			}
			break
		}
		st.HeapPops++
		for vi, ok := range s.vs[top] {
			if err := cc.tick(); err != nil {
				return nil, err
			}
			st.Validated++
			if s.validatePair(top, vi, ok, st) {
				s.minInf[top]++
			} else {
				s.maxInf[top]--
				if s.maxInf[top] < tthBest() {
					st.SkippedByBounds += int64(len(s.vs[top]) - vi - 1)
					s.cost.skip(top, len(s.vs[top])-vi-1)
					break
				}
			}
		}
		if s.maxInf[top] >= tthBest() {
			// Fully validated (the early break above implies the
			// opposite), so minInf is exact.
			insertCertified(Ranked{Index: top, Influence: s.minInf[top]})
		}
		heap.Pop(h)
	}
	return certified, nil
}

// newCandHeap builds the validation heap over all candidates.
func newCandHeap(s *voState, m int) *candHeap {
	h := &candHeap{order: make([]int, m), maxInf: s.maxInf, minInf: s.minInf}
	for i := range h.order {
		h.order[i] = i
	}
	heap.Init(h)
	return h
}
