package core

import "time"

// NA is the exhaustive baseline of §6.1: it computes the cumulative
// influence probability for every object/candidate pair and returns
// the most influential candidate. Its cost is Θ(m·r·n̄) position
// probes, the yardstick the pruning rules are measured against. NA
// uses no derived state, so an attached Problem.Plan is ignored.
func NA(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	start := time.Now()
	r := len(p.Objects)
	m := len(p.Candidates)
	res := &Result{Influences: make([]int, m)}
	res.Stats.PairsTotal = int64(r) * int64(m)

	cc := canceller{ctx: p.Ctx}
	valSp := p.Obs.Child("validate")
	for j, c := range p.Candidates {
		for _, o := range p.Objects {
			if err := cc.tick(); err != nil {
				valSp.End()
				return nil, err
			}
			res.Stats.Validated++
			p.Cost.validated(j, false)
			if influencedFull(p.PF, p.Tau, c, o.Positions, &res.Stats) {
				res.Influences[j]++
			}
		}
	}
	valSp.End()
	res.BestIndex, res.BestInfluence = argmax(res.Influences)
	p.Cost.finishExact(p, &res.Stats, res.Influences, res.BestIndex)
	finishSolve(p.Obs, AlgNA.String(), start, &res.Stats, p.Cost)
	return res, nil
}

// argmax returns the smallest index attaining the maximum value.
func argmax(v []int) (idx, max int) {
	idx, max = 0, v[0]
	for i, x := range v {
		if x > max {
			idx, max = i, x
		}
	}
	return idx, max
}
