package core

import (
	"pinocchio/internal/geo"
	"pinocchio/internal/probfn"
)

// CumulativeProb computes Definition 1 in full:
//
//	Pr_c(O) = 1 − Π_i (1 − PF(dist(c, p_i)))
//
// probing every position. probes, when non-nil, is incremented per PF
// evaluation.
func CumulativeProb(pf probfn.Func, c geo.Point, positions []geo.Point, probes *int64) float64 {
	nonInf := 1.0
	for _, p := range positions {
		nonInf *= 1 - pf.Prob(c.Dist(p))
	}
	if probes != nil {
		*probes += int64(len(positions))
	}
	return 1 - nonInf
}

// influencedFull decides Definition 2 by the full product, as the NA
// baseline and PINOCCHIO's validation phase (Algorithm 2, lines 11-14)
// do.
func influencedFull(pf probfn.Func, tau float64, c geo.Point, positions []geo.Point, st *Stats) bool {
	return CumulativeProb(pf, c, positions, &st.PositionProbes) >= tau
}

// influencedEarlyStop decides Definition 2 with Strategy 2 (Lemma 4):
// maintain the partial non-influence probability Π(1−Pr_c(p_i)) and
// stop as soon as it drops to 1−τ, because the remaining factors can
// only shrink it further. The order of positions does not affect
// correctness, only how early the stop triggers.
func influencedEarlyStop(pf probfn.Func, tau float64, c geo.Point, positions []geo.Point, st *Stats) bool {
	bar := 1 - tau
	nonInf := 1.0
	for i, p := range positions {
		st.PositionProbes++
		nonInf *= 1 - pf.Prob(c.Dist(p))
		if nonInf <= bar {
			if i < len(positions)-1 {
				st.EarlyStops++
			}
			return true
		}
	}
	return false
}
