package core

import "context"

// cancelEvery is the pair granularity of cooperative cancellation:
// scan loops consult ctx.Err() once per this many units of work, so an
// expired server-side deadline stops a solve mid-scan without putting
// a context call on every pair.
const cancelEvery = 256

// canceller amortizes context checks over scan iterations. A zero
// context never cancels, which keeps library callers that do not set
// Problem.Ctx on the previous zero-overhead path. Each goroutine must
// use its own canceller; the shared context's Err method is the only
// concurrently touched state.
type canceller struct {
	ctx context.Context
	n   int
}

// tick counts one unit of work and returns the context's error on a
// check boundary once the context is done.
func (c *canceller) tick() error {
	if c.ctx == nil {
		return nil
	}
	if c.n++; c.n%cancelEvery != 0 {
		return nil
	}
	return c.ctx.Err()
}

// ctxErr reports the problem context's current error: the entry check
// every solver runs right after Validate, so a request whose deadline
// already expired returns before any phase starts.
func (p *Problem) ctxErr() error {
	if p.Ctx == nil {
		return nil
	}
	return p.Ctx.Err()
}
