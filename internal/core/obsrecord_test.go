package core

import (
	"math/rand"
	"strings"
	"testing"

	"pinocchio/internal/obs"
)

// solveTraced runs alg with a fresh root span and returns the span.
func solveTraced(t *testing.T, alg Algorithm, p *Problem) *obs.Span {
	t.Helper()
	tp := *p
	tp.Obs = obs.NewSpan("query." + alg.String())
	if _, err := Solve(alg, &tp); err != nil {
		t.Fatal(err)
	}
	tp.Obs.End()
	return tp.Obs
}

func TestSolversEmitPhaseSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := randomProblem(rng, 160, 80, 0.5)

	wantPhases := map[Algorithm][]string{
		AlgNA:              {"validate"},
		AlgPinocchio:       {"build-a2d", "build-rtree", "prune", "validate"},
		AlgPinocchioVO:     {"build-a2d", "build-rtree", "prune", "validate"},
		AlgPinocchioVOStar: {"validate"},
	}
	for _, alg := range Algorithms() {
		sp := solveTraced(t, alg, p)
		ph := obs.PhaseMillis(sp)
		for _, phase := range wantPhases[alg] {
			if _, ok := ph[phase]; !ok {
				t.Fatalf("%v: phase %q missing from trace %v", alg, phase, ph)
			}
		}
		// The pruning algorithms must attribute real time to both the
		// prune and validate phases (the acceptance criterion for the
		// per-phase cost breakdown).
		if alg == AlgPinocchio || alg == AlgPinocchioVO {
			if ph["prune"] <= 0 || ph["validate"] <= 0 {
				t.Fatalf("%v: prune=%vms validate=%vms, want both > 0", alg, ph["prune"], ph["validate"])
			}
		}
		if sp.Attr("algo") != alg.String() {
			t.Fatalf("%v: span algo attr = %v", alg, sp.Attr("algo"))
		}
		st, ok := sp.Attr("stats").(Stats)
		if !ok || st.PairsTotal == 0 {
			t.Fatalf("%v: span stats attr = %v", alg, sp.Attr("stats"))
		}
		if _, err := sp.MarshalJSON(); err != nil {
			t.Fatalf("%v: trace JSON: %v", alg, err)
		}
	}
}

func TestSolveRecordsMetricsWhenEnabled(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 60, 40, 0.5)
	before := obs.Default().Counter(mQueries, "", obs.Labels{"algo": AlgPinocchioVO.String()}).Value()
	if _, err := PinocchioVO(p); err != nil {
		t.Fatal(err)
	}
	after := obs.Default().Counter(mQueries, "", obs.Labels{"algo": AlgPinocchioVO.String()}).Value()
	if after != before+1 {
		t.Fatalf("query counter %d -> %d, want +1", before, after)
	}
	var sb strings.Builder
	if err := obs.Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), mQueries) || !strings.Contains(sb.String(), mProbes) {
		t.Fatalf("exposition missing solver metrics:\n%s", sb.String())
	}
}
