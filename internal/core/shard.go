package core

// shard.go is the scatter-gather half of the shard-per-core engine:
// the serving layer partitions Ω into per-shard object sets (routed by
// dynamic.ShardOf), solves each part independently with any
// full-vector solver, and SolveSharded merges the per-shard influence
// vectors, Stats and Cost ledgers back into one exact Result.
//
// The merge is exact because influence is additive over objects: every
// object/candidate pair is settled inside exactly one part, so the
// per-candidate influence counts, the per-rule prune buckets and the
// work counters all sum. The two quantities that do NOT decompose by
// summation are recomputed at gather time: PairsTotal (r·m over the
// parent instance) and DistinctN (the distinct position-count table
// size — a union across parts, not a sum, since two shards may share
// an n). Early-exit solvers (PIN-VO, PIN-VO*, TopT) are not shardable
// this way: their bound-ordered termination depends on the global
// vector, so the serving layer runs them over the combined object set.

import (
	"fmt"
	"sync"
	"time"
)

// ShardSolve runs one part of a scattered solve. The part problem
// carries its own Objects slice (one shard of the parent's partition)
// and shares the parent's Candidates, PF and Tau; idx is the shard
// index, for labeling.
type ShardSolve func(idx int, part *Problem) (*Result, error)

// Shardable reports whether alg computes a full influence vector and
// therefore merges exactly under SolveSharded. The VO family early-
// exits on bounds ordered by the global vector, so it is excluded.
func Shardable(alg Algorithm) bool {
	switch alg {
	case AlgNA, AlgPinocchio:
		return true
	}
	return false
}

// SolveSharded scatters the parts and gathers one exact Result.
//
// p is the parent instance: its Objects must be exactly the
// concatenation (in any order) of the parts' Objects, and every part
// must share p.Candidates, p.PF and p.Tau — the gather step recomputes
// PairsTotal, DistinctN and the argmax over the parent, so a
// mismatched part silently corrupts the answer. Parts with no objects
// are skipped (Validate would reject them; an empty shard contributes
// zero influence). Each part may carry its own Plan (built over that
// shard's objects); parts must NOT carry a Cost — SolveSharded wires a
// private child of p.Cost into each part and merges the children, the
// same contention-free pattern PinocchioParallel uses for its workers.
//
// solve runs one part; it is invoked concurrently, one goroutine per
// non-empty part. The first error (including context cancellation
// propagated through p.Ctx into the parts) aborts the gather.
func SolveSharded(p *Problem, parts []*Problem, solve ShardSolve) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	p.stampTrace()
	start := time.Now()
	m := len(p.Candidates)
	res := &Result{Influences: make([]int, m)}
	st := &res.Stats

	type partResult struct {
		res  *Result
		cost *Cost
		dur  time.Duration
		err  error
	}
	results := make([]partResult, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		if part == nil || len(part.Objects) == 0 {
			continue
		}
		part.Cost = p.Cost.workerChild()
		if part.Ctx == nil {
			part.Ctx = p.Ctx
		}
		if part.Obs == nil {
			part.Obs = p.Obs.Child(fmt.Sprintf("shard-%d", i))
		}
		part.Obs.SetAttr("shard", i)
		part.Obs.SetAttr("objects", len(part.Objects))
		wg.Add(1)
		go func(i int, part *Problem) {
			defer wg.Done()
			shardStart := time.Now()
			r, err := solve(i, part)
			// End the per-shard span here so its recorded duration is the
			// shard's wall time, not whenever the trace is snapshotted.
			part.Obs.End()
			results[i] = partResult{res: r, cost: part.Cost, dur: time.Since(shardStart), err: err}
		}(i, part)
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, r.err)
		}
		if r.res == nil {
			continue
		}
		if len(r.res.Influences) != m {
			return nil, fmt.Errorf("core: shard %d returned %d influences, want %d (solver must compute the full vector)",
				i, len(r.res.Influences), m)
		}
		for j, v := range r.res.Influences {
			res.Influences[j] += v
		}
		st.Merge(r.res.Stats)
		p.Cost.merge(r.cost)
	}

	// PairsTotal and DistinctN over the parent: the per-part values sum
	// (respectively max-merge) to something else. DistinctN is the size
	// of the minMaxRadius memo table an unsharded solve would build —
	// the number of distinct position counts across ALL objects — which
	// the per-part union can only under-count through Merge's max. A
	// solver that never builds the table (NA) reports 0 everywhere, and
	// 0 it stays.
	st.PairsTotal = int64(len(p.Objects)) * int64(m)
	if st.DistinctN > 0 {
		seen := make(map[int]struct{})
		for _, o := range p.Objects {
			seen[o.N()] = struct{}{}
		}
		st.DistinctN = len(seen)
	}

	res.BestIndex, res.BestInfluence = argmax(res.Influences)
	p.Cost.finishExact(p, st, res.Influences, res.BestIndex)
	res.Trace = p.Obs
	res.ShardDurations = make([]time.Duration, len(parts))
	for i := range results {
		res.ShardDurations[i] = results[i].dur
	}
	RecordScatter(p.Obs, res.ShardDurations)
	finishSolve(p.Obs, "SHARDED", start, st, p.Cost)
	return res, nil
}
