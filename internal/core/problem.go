// Package core implements the PRIME-LS problem (Definition 3) and the
// paper's algorithms for it: the NA exhaustive baseline, PINOCCHIO
// (Algorithm 2, minMaxRadius pruning + sequential validation) and
// PINOCCHIO-VO (Algorithm 3, pruning + upper/lower influence bounds +
// early-stopping validation), plus the PINOCCHIO-VO* ablation that uses
// the validation optimizations without the pruning phase.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pinocchio/internal/geo"
	"pinocchio/internal/object"
	"pinocchio/internal/obs"
	"pinocchio/internal/probfn"
	"pinocchio/internal/rtree"
)

// Validation errors returned by Problem.Validate.
var (
	ErrNoObjects    = errors.New("core: problem needs at least one moving object")
	ErrNoCandidates = errors.New("core: problem needs at least one candidate location")
	ErrNilPF        = errors.New("core: problem needs a probability function")
	ErrBadTau       = errors.New("core: threshold tau must lie in (0, 1)")
	ErrPlanMismatch = errors.New("core: prebuilt plan does not match the problem")
)

// Problem is a PRIME-LS instance: moving objects Ω, candidate
// locations C, a distance-based probability function PF and the
// influence threshold τ.
type Problem struct {
	Objects    []*object.Object
	Candidates []geo.Point
	PF         probfn.Func
	Tau        float64

	// Fanout is the node capacity of the candidate R-tree; 0 selects
	// rtree.DefaultMaxEntries (8, the paper's setting).
	Fanout int

	// Obs, when non-nil, receives one child span per algorithm phase
	// (build-a2d, build-rtree, prune, validate, …) plus the run's work
	// counters as attributes. Nil disables tracing; every span method
	// is nil-safe, so the disabled path costs a pointer test.
	Obs *obs.Span

	// TraceID identifies the request this solve serves. The solver
	// entry points stamp it onto the root span (attribute "trace_id"),
	// so an exported span tree can be joined back to the serving
	// layer's trace store and log lines. Empty is fine and costs
	// nothing; the ID never influences the computation.
	TraceID string

	// Ctx, when non-nil, bounds the solve: the scan and validation
	// loops check it roughly every cancelEvery pairs and return its
	// error (context.Canceled or context.DeadlineExceeded) instead of
	// finishing the computation. Nil means no deadline, the library
	// default.
	Ctx context.Context

	// Cost, when non-nil, receives the solve's EXPLAIN accounting:
	// per-rule prune counts, live-vs-memoized validation, index node
	// visits and (after EnableVerdicts) a per-candidate verdict table.
	// Nil disables accounting; every Cost method is nil-safe and the
	// disabled path allocates nothing.
	Cost *Cost

	// Plan, when non-nil, supplies prebuilt solve state (BuildPlan):
	// the candidate R-tree, the A_2D array and the memoized prune
	// classification. It must have been built for exactly these
	// Objects, Candidates (same slices), PF, Tau and Fanout — Validate
	// rejects a detectable mismatch with ErrPlanMismatch. PF identity
	// is checked by value for the comparable probfn families and by
	// dynamic type only for custom implementations. Solvers that use
	// no derived state (NA, PINOCCHIO-VO*) ignore it; nil keeps the
	// build-per-solve path.
	Plan *Plan
}

// Validate checks the instance is well formed.
func (p *Problem) Validate() error {
	switch {
	case len(p.Objects) == 0:
		return ErrNoObjects
	case len(p.Candidates) == 0:
		return ErrNoCandidates
	case p.PF == nil:
		return ErrNilPF
	case !(p.Tau > 0 && p.Tau < 1):
		return fmt.Errorf("%w: got %v", ErrBadTau, p.Tau)
	}
	if p.Plan != nil && !p.Plan.matches(p) {
		return ErrPlanMismatch
	}
	return nil
}

// stampTrace annotates the root span with the request's trace ID; the
// solver entry points call it once per run.
func (p *Problem) stampTrace() {
	if p.TraceID != "" {
		p.Obs.SetAttr("trace_id", p.TraceID)
	}
}

// fanout resolves the effective R-tree fan-out.
func (p *Problem) fanout() int {
	if p.Fanout > 0 {
		return p.Fanout
	}
	return rtree.DefaultMaxEntries
}

// candidateTree bulk-loads the candidate set into an R-tree; the
// item ID is the candidate index into p.Candidates.
func (p *Problem) candidateTree() *rtree.Tree {
	items := make([]rtree.Item, len(p.Candidates))
	for i, c := range p.Candidates {
		items[i] = rtree.Item{Point: c, ID: i}
	}
	return rtree.Bulk(items, p.fanout())
}

// Result reports the outcome of a PRIME-LS computation.
type Result struct {
	// BestIndex is the index into Problem.Candidates of the selected
	// optimal location. Among equally influential candidates the
	// smallest index is returned by the exact algorithms (NA,
	// PINOCCHIO); PINOCCHIO-VO guarantees the same influence value but
	// may return a different equally optimal candidate.
	BestIndex int

	// BestInfluence is inf(BestIndex), the number of moving objects
	// influenced by the selected candidate.
	BestInfluence int

	// Influences is the exact influence of every candidate for
	// algorithms that compute it (NA, PINOCCHIO); nil for the VO
	// variants, which only certify the optimum.
	Influences []int

	// Stats holds the work counters accumulated during the run.
	Stats Stats

	// Trace is the span tree of this run when the caller supplied
	// Problem.Obs, nil otherwise. It aliases the caller's spans — the
	// phase breakdown travels with the result instead of requiring the
	// caller to keep the root around separately.
	Trace *obs.Span

	// ShardDurations, set only by SolveSharded, holds the wall time of
	// each scattered part (zero for parts skipped as empty), indexed
	// like the parts slice — the raw material for straggler
	// attribution at the serving layer.
	ShardDurations []time.Duration
}

// Stats instruments the algorithms: the counters behind Fig. 10
// (pruning effect) and the validation-cost discussion of §5.
type Stats struct {
	// PairsTotal is r·m, the number of object/candidate pairs.
	PairsTotal int64
	// PrunedByIA counts pairs resolved by the influence-arcs rule
	// (candidate certainly influences the object, no validation).
	PrunedByIA int64
	// PrunedByNIB counts pairs resolved by the non-influence-boundary
	// rule (candidate certainly cannot influence the object).
	PrunedByNIB int64
	// Validated counts pairs whose cumulative influence probability
	// was (at least partially) computed.
	Validated int64
	// SkippedByBounds counts pairs never validated because Strategy 1
	// eliminated the candidate (maxInf < maxminInf).
	SkippedByBounds int64
	// PositionProbes counts PF evaluations: the per-position work the
	// early-stopping Strategy 2 reduces.
	PositionProbes int64
	// EarlyStops counts validations finished by Lemma 4 before
	// exhausting an object's positions.
	EarlyStops int64
	// HeapPops counts candidates fully processed by the VO heap loop.
	HeapPops int64
	// DistinctN is the number of distinct position counts, i.e. the
	// size of the minMaxRadius memo table (HashMap HM of Algorithm 1).
	DistinctN int
}

// PruneRatio returns the fraction of object/candidate pairs resolved
// without validation by the two pruning rules.
func (s Stats) PruneRatio() float64 {
	if s.PairsTotal == 0 {
		return 0
	}
	return float64(s.PrunedByIA+s.PrunedByNIB) / float64(s.PairsTotal)
}

// Merge accumulates o into s: the flow counters sum, while DistinctN
// — the size of a memo table rather than a flow — takes the maximum.
// It is the single merge path shared by PinocchioParallel's shard
// reduction and by harness code aggregating stats across runs.
func (s *Stats) Merge(o Stats) {
	s.PairsTotal += o.PairsTotal
	s.PrunedByIA += o.PrunedByIA
	s.PrunedByNIB += o.PrunedByNIB
	s.Validated += o.Validated
	s.SkippedByBounds += o.SkippedByBounds
	s.PositionProbes += o.PositionProbes
	s.EarlyStops += o.EarlyStops
	s.HeapPops += o.HeapPops
	if o.DistinctN > s.DistinctN {
		s.DistinctN = o.DistinctN
	}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf(
		"stats{pairs=%d ia=%d nib=%d validated=%d skipped=%d probes=%d earlyStops=%d pops=%d distinctN=%d}",
		s.PairsTotal, s.PrunedByIA, s.PrunedByNIB, s.Validated,
		s.SkippedByBounds, s.PositionProbes, s.EarlyStops, s.HeapPops, s.DistinctN)
}
