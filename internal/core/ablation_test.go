package core

import (
	"math"
	"math/rand"
	"testing"

	"pinocchio/internal/geo"
	"pinocchio/internal/object"
	"pinocchio/internal/probfn"
)

// allAblations enumerates every switch combination.
func allAblations() []Ablation {
	var out []Ablation
	for i := 0; i < 32; i++ {
		out = append(out, Ablation{
			DisableIA:        i&1 != 0,
			DisableNIB:       i&2 != 0,
			DisableEarlyStop: i&4 != 0,
			LinearScan:       i&8 != 0,
			GridIndex:        i&16 != 0,
		})
	}
	return out
}

// TestAblationsPreserveCorrectness: disabling any optimization must
// never change the result, only the work done.
func TestAblationsPreserveCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 5; trial++ {
		p := randomProblem(rng, 40+rng.Intn(40), 30+rng.Intn(30), 0.5+0.1*float64(trial%4))
		ref, err := NA(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, ab := range allAblations() {
			res, err := PinocchioAblated(p, ab)
			if err != nil {
				t.Fatalf("%+v: %v", ab, err)
			}
			for j := range ref.Influences {
				if res.Influences[j] != ref.Influences[j] {
					t.Fatalf("trial %d %+v: influence[%d] = %d, want %d",
						trial, ab, j, res.Influences[j], ref.Influences[j])
				}
			}
			if res.BestIndex != ref.BestIndex {
				t.Fatalf("trial %d %+v: best %d, want %d", trial, ab, res.BestIndex, ref.BestIndex)
			}
		}
	}
}

// TestAblationWorkOrdering: each disabled rule must cost at least as
// many validations / probes as the full configuration.
func TestAblationWorkOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	p := randomProblem(rng, 150, 100, 0.7)
	full, err := PinocchioAblated(p, Ablation{})
	if err != nil {
		t.Fatal(err)
	}
	noIA, _ := PinocchioAblated(p, Ablation{DisableIA: true})
	noNIB, _ := PinocchioAblated(p, Ablation{DisableNIB: true})
	noStop, _ := PinocchioAblated(p, Ablation{DisableEarlyStop: true})
	none, _ := PinocchioAblated(p, Ablation{DisableIA: true, DisableNIB: true, DisableEarlyStop: true})

	if noIA.Stats.Validated < full.Stats.Validated {
		t.Errorf("disabling IA reduced validations: %d vs %d",
			noIA.Stats.Validated, full.Stats.Validated)
	}
	if noNIB.Stats.Validated < full.Stats.Validated {
		t.Errorf("disabling NIB reduced validations: %d vs %d",
			noNIB.Stats.Validated, full.Stats.Validated)
	}
	if noStop.Stats.PositionProbes < full.Stats.PositionProbes {
		t.Errorf("disabling early stop reduced probes: %d vs %d",
			noStop.Stats.PositionProbes, full.Stats.PositionProbes)
	}
	// The all-off configuration equals NA's probe count.
	na, _ := NA(p)
	if none.Stats.PositionProbes != na.Stats.PositionProbes {
		t.Errorf("all-off probes %d != NA probes %d",
			none.Stats.PositionProbes, na.Stats.PositionProbes)
	}
	if none.Stats.Validated != na.Stats.Validated {
		t.Errorf("all-off validations %d != NA %d", none.Stats.Validated, na.Stats.Validated)
	}
}

// TestLinearScanEquivalence: the R-tree is an index, not a semantic
// component — linear scan must agree with it pair for pair.
func TestLinearScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	p := randomProblem(rng, 80, 60, 0.7)
	withTree, err := PinocchioAblated(p, Ablation{})
	if err != nil {
		t.Fatal(err)
	}
	withScan, err := PinocchioAblated(p, Ablation{LinearScan: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := range withTree.Influences {
		if withTree.Influences[j] != withScan.Influences[j] {
			t.Fatalf("influence[%d]: tree %d vs scan %d",
				j, withTree.Influences[j], withScan.Influences[j])
		}
	}
	// Same pruning decisions: IA counts must match (NIB counting is
	// identical too because the scan still classifies per candidate).
	if withTree.Stats.PrunedByIA != withScan.Stats.PrunedByIA {
		t.Errorf("IA prunes differ: %d vs %d",
			withTree.Stats.PrunedByIA, withScan.Stats.PrunedByIA)
	}
	if withTree.Stats.PrunedByNIB != withScan.Stats.PrunedByNIB {
		t.Errorf("NIB prunes differ: %d vs %d",
			withTree.Stats.PrunedByNIB, withScan.Stats.PrunedByNIB)
	}
}

func TestAblatedValidatesProblem(t *testing.T) {
	if _, err := PinocchioAblated(&Problem{}, Ablation{}); err == nil {
		t.Error("invalid problem should error")
	}
}

// TestEarlyStopSavingsOnCheckinWorkload quantifies the §5 claim that
// the framework avoids a large share of position validations: on a
// check-in-like workload, Strategy 2 must cut probes substantially.
// Counters are deterministic, so the measured fraction is stable.
func TestEarlyStopSavingsOnCheckinWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(261))
	// Heavy-tailed position counts, clustered positions: the regime
	// where early stopping bites (first nearby positions decide).
	var objs []*object.Object
	for k := 0; k < 300; k++ {
		n := 1 + int(math.Exp(rng.NormFloat64()*1.5+2.2))
		if n > 200 {
			n = 200
		}
		cx, cy := rng.Float64()*40, rng.Float64()*30
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: cx + rng.NormFloat64()*2, Y: cy + rng.NormFloat64()*2}
		}
		objs = append(objs, object.MustNew(k, pts))
	}
	cands := make([]geo.Point, 150)
	for j := range cands {
		cands[j] = geo.Point{X: rng.Float64() * 40, Y: rng.Float64() * 30}
	}
	p := &Problem{Objects: objs, Candidates: cands, PF: probfn.DefaultPowerLaw(), Tau: 0.7}

	full, err := PinocchioAblated(p, Ablation{})
	if err != nil {
		t.Fatal(err)
	}
	noStop, err := PinocchioAblated(p, Ablation{DisableEarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	nothing, err := PinocchioAblated(p, Ablation{DisableIA: true, DisableNIB: true, DisableEarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}

	// The §1.3 claim — "avoid nearly 67 percent unnecessary position
	// validation by adopting our pruning techniques" — is about the
	// IA/NIB rules: compare against validating every pair in full.
	savedByPruning := 1 - float64(noStop.Stats.PositionProbes)/float64(nothing.Stats.PositionProbes)
	t.Logf("pruning avoided %.0f%% of position probes (%d vs %d)",
		savedByPruning*100, noStop.Stats.PositionProbes, nothing.Stats.PositionProbes)
	if savedByPruning < 0.5 {
		t.Errorf("pruning saved only %.0f%% of probes; §1.3 expects ≈2/3", savedByPruning*100)
	}

	// Strategy 2 shaves an additional slice off the remnant pairs. It
	// is modest by construction: pruning has already absorbed the
	// easy decisions, leaving the near-threshold pairs where the
	// product needs most of its factors.
	extra := 1 - float64(full.Stats.PositionProbes)/float64(noStop.Stats.PositionProbes)
	t.Logf("early stopping avoided a further %.0f%% on remnant pairs (%d vs %d)",
		extra*100, full.Stats.PositionProbes, noStop.Stats.PositionProbes)
	if extra <= 0 {
		t.Errorf("early stopping saved nothing (%.2f%%)", extra*100)
	}
}
