package core

import (
	"time"

	"pinocchio/internal/object"
	"pinocchio/internal/rtree"
)

// a2dEntry is one tuple of the moving-object 2D array A_2D built by
// Algorithm 1: the object's positions plus its precomputed pruning
// geometry (IA and NIB, both induced by minMaxRadius).
type a2dEntry struct {
	obj     *object.Object
	regions object.Regions
}

// buildA2D runs Algorithm 1: for each object, memoize
// minMaxRadius(τ, n_k) in the per-n table HM and derive the IA/NIB
// geometry from MBR(O_k).
func buildA2D(p *Problem, st *Stats) []a2dEntry {
	hm := object.NewRadiusTable(p.PF, p.Tau)
	a2d := make([]a2dEntry, len(p.Objects))
	for k, o := range p.Objects {
		mu := hm.Get(o.N())
		a2d[k] = a2dEntry{obj: o, regions: object.NewRegions(o, mu)}
	}
	st.DistinctN = hm.Len()
	return a2d
}

// pruneObject classifies the candidates relevant to one object with a
// single R-tree range query over the MBR of its non-influence boundary
// and per-candidate minDist/maxDist tests. It calls influenced for
// IA-certain candidates and validate for the remnant set C”.
// Candidates outside the NIB box are never touched: they are pruned
// implicitly and accounted to PrunedByNIB by the caller.
func pruneObject(tree *rtree.Tree, e a2dEntry, influenced func(cand int), validate func(cand int)) (touched int64, iaHits int64) {
	tree.SearchRect(e.regions.NIBBox(), func(it rtree.Item) bool {
		touched++
		switch e.regions.Classify(it.Point) {
		case object.Influenced:
			iaHits++
			influenced(it.ID)
		case object.NeedsValidation:
			validate(it.ID)
		default:
			// Inside the NIB box corners but outside the rounded NIB
			// region: pruned by Lemma 3 like the untouched candidates.
			touched--
		}
		return true
	})
	return touched, iaHits
}

// Pinocchio is Algorithm 2. The pruning phase resolves most
// object/candidate pairs with the influence-arcs and non-influence
// boundary rules; the remnant pairs are validated by the full
// cumulative-probability computation. It returns exact influence for
// every candidate.
func Pinocchio(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := len(p.Candidates)
	res := &Result{Influences: make([]int, m)}
	st := &res.Stats
	st.PairsTotal = int64(len(p.Objects)) * int64(m)

	buildSp := p.Obs.Child("build-a2d")
	a2d := buildA2D(p, st)
	buildSp.End()
	treeSp := p.Obs.Child("build-rtree")
	tree := p.candidateTree()
	treeSp.End()

	// The prune scan calls validation inline, so the validate phase
	// accumulates its own windows and the prune span records the scan
	// time exclusive of them.
	pruneSp := p.Obs.Child("prune")
	valSp := p.Obs.Child("validate")
	scanStart := pruneSp.StartTimer()
	cc := canceller{ctx: p.Ctx}
	var ctxErr error
	for _, e := range a2d {
		touched, ia := pruneObject(tree, e,
			func(cand int) { res.Influences[cand]++ },
			func(cand int) {
				if ctxErr != nil {
					return
				}
				if ctxErr = cc.tick(); ctxErr != nil {
					return
				}
				st.Validated++
				w := valSp.StartTimer()
				if influencedFull(p.PF, p.Tau, p.Candidates[cand], e.obj.Positions, st) {
					res.Influences[cand]++
				}
				valSp.StopTimer(w)
			})
		st.PrunedByIA += ia
		st.PrunedByNIB += int64(m) - touched
		if ctxErr != nil {
			break
		}
	}
	pruneSp.EndExclusive(scanStart, valSp)
	valSp.End()
	if ctxErr != nil {
		return nil, ctxErr
	}

	res.BestIndex, res.BestInfluence = argmax(res.Influences)
	finishSolve(p.Obs, AlgPinocchio.String(), start, st)
	return res, nil
}
