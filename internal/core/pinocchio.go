package core

import (
	"time"

	"pinocchio/internal/object"
	"pinocchio/internal/rtree"
)

// a2dEntry is one tuple of the moving-object 2D array A_2D built by
// Algorithm 1: the object's positions plus its precomputed pruning
// geometry (IA and NIB, both induced by minMaxRadius).
type a2dEntry struct {
	obj     *object.Object
	regions object.Regions
}

// buildA2D runs Algorithm 1: for each object, memoize
// minMaxRadius(τ, n_k) in the per-n table HM and derive the IA/NIB
// geometry from MBR(O_k). This is the sequential per-solve path;
// BuildPlan uses computeA2D's parallel construction for cold builds.
func buildA2D(p *Problem, st *Stats) []a2dEntry {
	a2d, distinct := computeA2D(p.Objects, p.PF, p.Tau, 1)
	st.DistinctN = distinct
	return a2d
}

// pruneObject classifies the candidates relevant to one object with a
// single R-tree range query over the MBR of its non-influence boundary
// and per-candidate minDist/maxDist tests. It calls influenced for
// IA-certain candidates and validate for the remnant set C”.
// Candidates outside the NIB box are never touched: they are pruned
// implicitly and accounted to PrunedByNIB by the caller. arcs counts
// the touched-but-rejected candidates (the nib-arc rule); nodes, when
// non-nil, accumulates R-tree node visits.
func pruneObject(tree *rtree.Tree, e a2dEntry, nodes *int64, influenced func(cand int), validate func(cand int)) (touched, iaHits, arcs int64) {
	tree.SearchRectCounted(e.regions.NIBBox(), func(it rtree.Item) bool {
		touched++
		switch e.regions.Classify(it.Point) {
		case object.Influenced:
			iaHits++
			influenced(it.ID)
		case object.NeedsValidation:
			validate(it.ID)
		default:
			// Inside the NIB box corners but outside the rounded NIB
			// region: pruned by Lemma 3 like the untouched candidates.
			touched--
			arcs++
		}
		return true
	}, nodes)
	return touched, iaHits, arcs
}

// validateSampleLog sets the validate phase's timer sampling: one
// validation window in every 2^6 = 64 is timed and scaled up
// (obs.Span.Sampler). Per-pair windows would otherwise spend more on
// clock reads than small solves spend on validation itself.
const validateSampleLog = 6

// Pinocchio is Algorithm 2. The pruning phase resolves most
// object/candidate pairs with the influence-arcs and non-influence
// boundary rules; the remnant pairs are validated by the full
// cumulative-probability computation. It returns exact influence for
// every candidate.
func Pinocchio(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := len(p.Candidates)
	res := &Result{Influences: make([]int, m)}
	st := &res.Stats
	st.PairsTotal = int64(len(p.Objects)) * int64(m)

	a2d, tree, prunes := p.solveState(st)

	// The prune scan calls validation inline, so the validate phase
	// accumulates its own windows and the prune span records the scan
	// time exclusive of them.
	pruneSp := p.Obs.Child("prune")
	valSp := p.Obs.Child("validate")
	// Sampled windows: validations are the per-pair hot path, and two
	// clock reads each would dominate small traced solves.
	valTimer := valSp.Sampler(validateSampleLog)
	scanStart := pruneSp.StartTimer()
	cc := canceller{ctx: p.Ctx}
	cost := p.Cost
	var ctxErr error
	for k, e := range a2d {
		touched, ia, arcs := scanObject(tree, prunes, k, e, cost.nodeCounter(),
			func(cand int) {
				cost.pruneIA(cand)
				res.Influences[cand]++
			},
			func(cand int, out *valOutcome) {
				if ctxErr != nil {
					return
				}
				if ctxErr = cc.tick(); ctxErr != nil {
					return
				}
				st.Validated++
				cost.validated(cand, out != nil)
				valTimer.Start()
				var inf bool
				if out != nil {
					inf = replayFull(out, e.obj.N(), st)
				} else {
					inf = influencedFull(p.PF, p.Tau, p.Candidates[cand], e.obj.Positions, st)
				}
				if inf {
					res.Influences[cand]++
				}
				valTimer.Stop()
			})
		st.PrunedByIA += ia
		st.PrunedByNIB += int64(m) - touched
		cost.addNIB(arcs, int64(m)-touched-arcs)
		if ctxErr != nil {
			break
		}
	}
	valTimer.Finish()
	pruneSp.EndExclusive(scanStart, valSp)
	valSp.End()
	if ctxErr != nil {
		return nil, ctxErr
	}

	res.BestIndex, res.BestInfluence = argmax(res.Influences)
	cost.finishExact(p, st, res.Influences, res.BestIndex)
	finishSolve(p.Obs, AlgPinocchio.String(), start, st, cost)
	return res, nil
}
