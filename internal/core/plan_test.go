package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"pinocchio/internal/geo"
	"pinocchio/internal/object"
	"pinocchio/internal/probfn"
)

// TestPlanParityAllSolvers is the core plan-cache guarantee: attaching
// a prebuilt plan yields a Result byte-identical to the cold
// build-per-solve path, Stats included, for every solver.
func TestPlanParityAllSolvers(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		p := randomProblem(rand.New(rand.NewSource(seed)), 80, 60, 0.7)
		pl, err := BuildPlan(p, nil)
		if err != nil {
			t.Fatalf("BuildPlan: %v", err)
		}
		warm := *p
		warm.Plan = pl

		for _, alg := range Algorithms() {
			cold, err := Solve(alg, p)
			if err != nil {
				t.Fatalf("seed %d %v cold: %v", seed, alg, err)
			}
			hot, err := Solve(alg, &warm)
			if err != nil {
				t.Fatalf("seed %d %v warm: %v", seed, alg, err)
			}
			if !reflect.DeepEqual(cold, hot) {
				t.Errorf("seed %d %v: warm result differs\ncold: %+v\nwarm: %+v", seed, alg, cold, hot)
			}
		}

		coldPar, err := PinocchioParallel(p, 3)
		if err != nil {
			t.Fatalf("seed %d PIN-PAR cold: %v", seed, err)
		}
		hotPar, err := PinocchioParallel(&warm, 3)
		if err != nil {
			t.Fatalf("seed %d PIN-PAR warm: %v", seed, err)
		}
		if !reflect.DeepEqual(coldPar, hotPar) {
			t.Errorf("seed %d PIN-PAR: warm result differs\ncold: %+v\nwarm: %+v", seed, coldPar, hotPar)
		}

		coldRk, coldSt, err := PinocchioVOTopT(p, 5)
		if err != nil {
			t.Fatalf("seed %d TopT cold: %v", seed, err)
		}
		hotRk, hotSt, err := PinocchioVOTopT(&warm, 5)
		if err != nil {
			t.Fatalf("seed %d TopT warm: %v", seed, err)
		}
		if !reflect.DeepEqual(coldRk, hotRk) || !reflect.DeepEqual(coldSt, hotSt) {
			t.Errorf("seed %d TopT: warm result differs", seed)
		}
	}
}

// TestPlanSharedTree proves the epoch-keyed half: a plan built over a
// shared CandTree behaves exactly like one that built its own tree.
func TestPlanSharedTree(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(3)), 60, 40, 0.7)
	ct := NewCandTree(p.Candidates, p.fanout())
	shared, err := BuildPlan(p, ct)
	if err != nil {
		t.Fatalf("BuildPlan with tree: %v", err)
	}
	if shared.tree != ct.tree {
		t.Fatalf("plan did not adopt the shared tree")
	}
	own, err := BuildPlan(p, nil)
	if err != nil {
		t.Fatalf("BuildPlan without tree: %v", err)
	}
	for _, pl := range []*Plan{shared, own} {
		warm := *p
		warm.Plan = pl
		cold, err := Pinocchio(p)
		if err != nil {
			t.Fatal(err)
		}
		hot, err := Pinocchio(&warm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, hot) {
			t.Errorf("shared-tree plan diverges from cold solve")
		}
	}
	// A tree over different candidates must not be adopted.
	other := NewCandTree(append([]geo.Point{}, p.Candidates...), p.fanout())
	pl, err := BuildPlan(p, other)
	if err != nil {
		t.Fatal(err)
	}
	if pl.tree == other.tree {
		t.Errorf("plan adopted a tree built over a different candidate slice")
	}
}

// TestPlanMismatchRejected exercises the Validate guard: a plan used
// with different inputs is a loud error, never a silent wrong answer.
func TestPlanMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 20, 15, 0.7)
	pl, err := BuildPlan(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"different tau", func(q *Problem) { q.Tau = 0.5 }},
		{"different pf", func(q *Problem) { q.PF = probfn.Linear{Rho: 0.9, Range: 10} }},
		{"different fanout", func(q *Problem) { q.Fanout = 4 }},
		{"reallocated objects", func(q *Problem) { q.Objects = append([]*object.Object{}, q.Objects...) }},
		{"reallocated candidates", func(q *Problem) { q.Candidates = append([]geo.Point{}, q.Candidates...) }},
		{"fewer objects", func(q *Problem) { q.Objects = q.Objects[:len(q.Objects)-1] }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			q := *p
			q.Plan = pl
			tt.mutate(&q)
			if err := q.Validate(); !errors.Is(err, ErrPlanMismatch) {
				t.Errorf("Validate = %v, want ErrPlanMismatch", err)
			}
			if _, err := Pinocchio(&q); !errors.Is(err, ErrPlanMismatch) {
				t.Errorf("Pinocchio = %v, want ErrPlanMismatch", err)
			}
		})
	}
}

// TestPlanBuildCancelled: a done context aborts plan construction.
func TestPlanBuildCancelled(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(9)), 4000, 50, 0.7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Ctx = ctx
	if _, err := BuildPlan(p, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("BuildPlan with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestComputeA2DParallelMatchesSequential: the sharded cold build
// produces the same entries and distinct-n count as Algorithm 1.
func TestComputeA2DParallelMatchesSequential(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(11)), 500, 10, 0.7)
	seqA2D, seqN := computeA2D(p.Objects, p.PF, p.Tau, 1)
	parA2D, parN := computeA2D(p.Objects, p.PF, p.Tau, 4)
	if seqN != parN {
		t.Errorf("distinctN: parallel %d, sequential %d", parN, seqN)
	}
	if !reflect.DeepEqual(seqA2D, parA2D) {
		t.Errorf("parallel A2D differs from sequential")
	}
}
