package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"pinocchio/internal/dynamic"
	"pinocchio/internal/object"
)

// shardParts partitions p's objects by the production router
// (dynamic.ShardOf over the object id) into n part problems sharing
// p's candidates, PF and τ — exactly what the serving layer's scatter
// path builds from its per-shard snapshots.
func shardParts(p *Problem, n int) []*Problem {
	buckets := make([][]*object.Object, n)
	for _, o := range p.Objects {
		s := dynamic.ShardOf(o.ID, n)
		buckets[s] = append(buckets[s], o)
	}
	parts := make([]*Problem, n)
	for i, objs := range buckets {
		parts[i] = &Problem{
			Objects:    objs,
			Candidates: p.Candidates,
			PF:         p.PF,
			Tau:        p.Tau,
		}
	}
	return parts
}

// TestSolveShardedParity is the sharded-vs-unsharded oracle: for
// random instances and every full-vector solver, the merged result
// across N ∈ {1, 2, NumCPU, 5} shards must be byte-identical to the
// unsharded solve — Influences, the full Stats struct (PairsTotal,
// prune buckets, probes, DistinctN), and the Cost ledger including the
// per-candidate verdict table. Run under -race (scripts/ci.sh) it also
// exercises the concurrent scatter.
func TestSolveShardedParity(t *testing.T) {
	solvers := []struct {
		name  string
		solve func(*Problem) (*Result, error)
	}{
		{"na", func(p *Problem) (*Result, error) { return Solve(AlgNA, p) }},
		{"pin", func(p *Problem) (*Result, error) { return Solve(AlgPinocchio, p) }},
		{"pin-par", func(p *Problem) (*Result, error) { return PinocchioParallel(p, 3) }},
	}
	shardCounts := []int{1, 2, runtime.NumCPU(), 5}

	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 6; trial++ {
		base := randomProblem(rng, 40+rng.Intn(120), 30+rng.Intn(50), 0.3+0.2*float64(trial%3))
		for _, sv := range solvers {
			ref := &Problem{Objects: base.Objects, Candidates: base.Candidates, PF: base.PF, Tau: base.Tau,
				Cost: &Cost{}}
			ref.Cost.EnableVerdicts(len(ref.Candidates))
			want, err := sv.solve(ref)
			if err != nil {
				t.Fatalf("trial %d %s: unsharded: %v", trial, sv.name, err)
			}
			for _, n := range shardCounts {
				p := &Problem{Objects: base.Objects, Candidates: base.Candidates, PF: base.PF, Tau: base.Tau,
					Cost: &Cost{}}
				p.Cost.EnableVerdicts(len(p.Candidates))
				got, err := SolveSharded(p, shardParts(p, n), func(_ int, part *Problem) (*Result, error) {
					return sv.solve(part)
				})
				if err != nil {
					t.Fatalf("trial %d %s shards=%d: %v", trial, sv.name, n, err)
				}
				if !reflect.DeepEqual(got.Influences, want.Influences) {
					t.Fatalf("trial %d %s shards=%d: influence vectors diverged", trial, sv.name, n)
				}
				if got.BestIndex != want.BestIndex || got.BestInfluence != want.BestInfluence {
					t.Fatalf("trial %d %s shards=%d: best (%d,%d), want (%d,%d)",
						trial, sv.name, n, got.BestIndex, got.BestInfluence, want.BestIndex, want.BestInfluence)
				}
				if got.Stats != want.Stats {
					t.Fatalf("trial %d %s shards=%d: stats %+v, want %+v",
						trial, sv.name, n, got.Stats, want.Stats)
				}
				// Cost buckets must partition PairsTotal identically;
				// PlanSource legitimately differs (none vs the parent's),
				// so compare the numeric ledger and the verdict table.
				gc, wc := p.Cost, ref.Cost
				if gc.PairsTotal != wc.PairsTotal || gc.PrunedIA != wc.PrunedIA ||
					gc.PrunedNIBBox != wc.PrunedNIBBox || gc.PrunedNIBArc != wc.PrunedNIBArc ||
					gc.ValidatedLive != wc.ValidatedLive || gc.ValidatedMemo != wc.ValidatedMemo ||
					gc.SkippedByBounds != wc.SkippedByBounds || gc.PositionProbes != wc.PositionProbes {
					t.Fatalf("trial %d %s shards=%d: cost %v, want %v", trial, sv.name, n, gc, wc)
				}
				if gc.AccountedPairs() != gc.PairsTotal {
					t.Fatalf("trial %d %s shards=%d: accounting leak: %d of %d pairs",
						trial, sv.name, n, gc.AccountedPairs(), gc.PairsTotal)
				}
				if !reflect.DeepEqual(gc.Verdicts(), wc.Verdicts()) {
					t.Fatalf("trial %d %s shards=%d: verdict tables diverged", trial, sv.name, n)
				}
			}
		}
	}
}

// TestSolveShardedEmptyShards: a partition where some shards hold no
// objects (n far beyond the object count) must still merge exactly —
// empty parts are skipped, not solved.
func TestSolveShardedEmptyShards(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := randomProblem(rng, 7, 25, 0.6)
	want, err := Solve(AlgPinocchio,
		&Problem{Objects: base.Objects, Candidates: base.Candidates, PF: base.PF, Tau: base.Tau})
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{Objects: base.Objects, Candidates: base.Candidates, PF: base.PF, Tau: base.Tau}
	got, err := SolveSharded(p, shardParts(p, 64), func(_ int, part *Problem) (*Result, error) {
		return Solve(AlgPinocchio, part)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Influences, want.Influences) || got.Stats != want.Stats {
		t.Fatalf("sparse partition diverged: %+v vs %+v", got.Stats, want.Stats)
	}
}

// TestShardOfStability: the router is a pure function of (id, n) —
// recovery and the live path must agree forever — and spreads a dense
// id range without striping artifacts.
func TestShardOfStability(t *testing.T) {
	if got := dynamic.ShardOf(42, 1); got != 0 {
		t.Fatalf("ShardOf(42, 1) = %d, want 0", got)
	}
	if got := dynamic.ShardOf(-7, 4); got < 0 || got > 3 {
		t.Fatalf("ShardOf(-7, 4) = %d out of range", got)
	}
	counts := make([]int, 8)
	for id := 0; id < 8000; id++ {
		s := dynamic.ShardOf(id, 8)
		if s != dynamic.ShardOf(id, 8) {
			t.Fatalf("ShardOf unstable for id %d", id)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("shard %d holds %d of 8000 ids: router is skewed %v", s, c, counts)
		}
	}
}
