package core

import (
	"time"

	"pinocchio/internal/obs"
)

// Metric names exported by the solvers (catalogue in DESIGN.md §6).
// All pair/probe counters carry an algo label so per-algorithm cost
// profiles can be compared on one scrape.
const (
	mQueries    = "pinocchio_queries_total"
	mQuerySecs  = "pinocchio_query_seconds"
	mPairs      = "pinocchio_pairs_total"
	mPrunedIA   = "pinocchio_pairs_pruned_ia_total"
	mPrunedNIB  = "pinocchio_pairs_pruned_nib_total"
	mValidated  = "pinocchio_pairs_validated_total"
	mSkipped    = "pinocchio_pairs_skipped_bounds_total"
	mProbes     = "pinocchio_position_probes_total"
	mEarlyStops = "pinocchio_early_stops_total"
	mHeapPops   = "pinocchio_heap_pops_total"
	mPruneRatio = "pinocchio_last_prune_ratio"
)

// finishSolve closes out one solver run: it annotates the query's
// root span with the work counters and, when metric recording is on,
// folds the run into the default registry. start is taken before the
// algorithm's first phase; the two time.Now calls per query are noise
// next to a solve, and everything else gates on obs.Enabled().
func finishSolve(sp *obs.Span, alg string, start time.Time, st *Stats) {
	if sp != nil {
		sp.SetAttr("algo", alg)
		sp.SetAttr("stats", *st)
		sp.SetAttr("prune_ratio", st.PruneRatio())
	}
	if !obs.Enabled() {
		return
	}
	dur := time.Since(start)
	r := obs.Default()
	lbl := obs.Labels{"algo": alg}
	r.Counter(mQueries, "PRIME-LS queries solved.", lbl).Inc()
	r.Histogram(mQuerySecs, "Query wall time in seconds.", obs.DefBuckets, lbl).Observe(dur.Seconds())
	r.Counter(mPairs, "Object/candidate pairs considered.", lbl).Add(st.PairsTotal)
	r.Counter(mPrunedIA, "Pairs resolved by the influence-arcs rule.", lbl).Add(st.PrunedByIA)
	r.Counter(mPrunedNIB, "Pairs resolved by the non-influence-boundary rule.", lbl).Add(st.PrunedByNIB)
	r.Counter(mValidated, "Pairs validated by cumulative-probability computation.", lbl).Add(st.Validated)
	r.Counter(mSkipped, "Pairs skipped by the Strategy 1 bounds.", lbl).Add(st.SkippedByBounds)
	r.Counter(mProbes, "Probability-function evaluations.", lbl).Add(st.PositionProbes)
	r.Counter(mEarlyStops, "Validations finished early by Lemma 4.", lbl).Add(st.EarlyStops)
	r.Counter(mHeapPops, "Candidates fully processed by the VO heap loop.", lbl).Add(st.HeapPops)
	r.Gauge(mPruneRatio, "Prune ratio of the most recent query.", lbl).Set(st.PruneRatio())
}
