package core

import (
	"strconv"
	"time"

	"pinocchio/internal/obs"
)

// Metric names exported by the solvers (catalogue in DESIGN.md §6).
// All pair/probe counters carry an algo label so per-algorithm cost
// profiles can be compared on one scrape.
const (
	mQueries    = "pinocchio_queries_total"
	mQuerySecs  = "pinocchio_query_seconds"
	mPairs      = "pinocchio_pairs_total"
	mPrunedIA   = "pinocchio_pairs_pruned_ia_total"
	mPrunedNIB  = "pinocchio_pairs_pruned_nib_total"
	mValidated  = "pinocchio_pairs_validated_total"
	mSkipped    = "pinocchio_pairs_skipped_bounds_total"
	mProbes     = "pinocchio_position_probes_total"
	mEarlyStops = "pinocchio_early_stops_total"
	mHeapPops   = "pinocchio_heap_pops_total"
	mPruneRatio = "pinocchio_last_prune_ratio"

	// Work-per-query distributions (all queries, from Stats).
	mQueryValidated = "pinocchio_query_validated_pairs"
	mQueryProbes    = "pinocchio_query_position_probes"

	// EXPLAIN-only counters, recorded when a solve carries a Cost
	// ledger: the per-rule prune split and validation provenance.
	mPrunedRule   = "pinocchio_pairs_pruned_rule_total"
	mValidatedSrc = "pinocchio_pairs_validated_src_total"
	mNodeVisits   = "pinocchio_rtree_node_visits_total"
	mGridCells    = "pinocchio_grid_cells_scanned_total"
	mExplained    = "pinocchio_explained_queries_total"

	// MetricScatterShard is the per-shard wall-time histogram of
	// scattered solves, labeled {shard} — the straggler-attribution
	// layer of DESIGN.md §15. Exported so the serving layer's status
	// block and the metrics-exhaustiveness test can reference it.
	MetricScatterShard = "pinocchio_scatter_shard_seconds"
)

// WorkBuckets grades per-query work counts (pairs, probes) on decades;
// work, unlike latency, spans from tens to hundreds of millions.
var WorkBuckets = []float64{
	1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
}

// finishSolve closes out one solver run: it annotates the query's
// root span with the work counters (and the EXPLAIN ledger when the
// solve carried one) and, when metric recording is on, folds the run
// into the default registry. start is taken before the algorithm's
// first phase; the two time.Now calls per query are noise next to a
// solve, and everything else gates on obs.Enabled().
func finishSolve(sp *obs.Span, alg string, start time.Time, st *Stats, cost *Cost) {
	if sp != nil {
		sp.SetAttr("algo", alg)
		sp.SetAttr("stats", *st)
		sp.SetAttr("prune_ratio", st.PruneRatio())
		if cost != nil {
			// The struct copy drops nothing the trace needs: the
			// verdict table lives only in the explain response, and
			// unexported fields do not marshal.
			sp.SetAttr("cost", *cost)
		}
	}
	if !obs.Enabled() {
		return
	}
	dur := time.Since(start)
	r := obs.Default()
	lbl := obs.Labels{"algo": alg}
	r.Counter(mQueries, "PRIME-LS queries solved.", lbl).Inc()
	r.Histogram(mQuerySecs, "Query wall time in seconds.", obs.DefBuckets, lbl).Observe(dur.Seconds())
	r.Counter(mPairs, "Object/candidate pairs considered.", lbl).Add(st.PairsTotal)
	r.Counter(mPrunedIA, "Pairs resolved by the influence-arcs rule.", lbl).Add(st.PrunedByIA)
	r.Counter(mPrunedNIB, "Pairs resolved by the non-influence-boundary rule.", lbl).Add(st.PrunedByNIB)
	r.Counter(mValidated, "Pairs validated by cumulative-probability computation.", lbl).Add(st.Validated)
	r.Counter(mSkipped, "Pairs skipped by the Strategy 1 bounds.", lbl).Add(st.SkippedByBounds)
	r.Counter(mProbes, "Probability-function evaluations.", lbl).Add(st.PositionProbes)
	r.Counter(mEarlyStops, "Validations finished early by Lemma 4.", lbl).Add(st.EarlyStops)
	r.Counter(mHeapPops, "Candidates fully processed by the VO heap loop.", lbl).Add(st.HeapPops)
	r.Gauge(mPruneRatio, "Prune ratio of the most recent query.", lbl).Set(st.PruneRatio())
	r.Histogram(mQueryValidated, "Pairs validated per query.", WorkBuckets, lbl).Observe(float64(st.Validated))
	r.Histogram(mQueryProbes, "Position probes per query.", WorkBuckets, lbl).Observe(float64(st.PositionProbes))
	if cost != nil {
		recordCost(r, alg, cost)
	}
}

// RecordScatter closes out the gather step of a scattered operation:
// straggler stats (max/min/mean shard wall time, imbalance ratio
// max/mean) annotated on the gather root span, and one observation
// per shard in the pinocchio_scatter_shard_seconds histogram. Empty
// shards (zero duration) are excluded from both. SolveSharded calls
// it for solves; the serving layer reuses it for other sharded
// scatters (rect collection).
func RecordScatter(sp *obs.Span, durs []time.Duration) {
	var max, min, sum time.Duration
	n := 0
	for _, d := range durs {
		if d <= 0 {
			continue
		}
		if n == 0 || d > max {
			max = d
		}
		if n == 0 || d < min {
			min = d
		}
		sum += d
		n++
	}
	if n == 0 {
		return
	}
	mean := sum / time.Duration(n)
	imbalance := 1.0
	if mean > 0 {
		imbalance = float64(max) / float64(mean)
	}
	if sp != nil {
		sp.SetAttr("shard_max_ms", float64(max)/float64(time.Millisecond))
		sp.SetAttr("shard_min_ms", float64(min)/float64(time.Millisecond))
		sp.SetAttr("shard_mean_ms", float64(mean)/float64(time.Millisecond))
		sp.SetAttr("shard_imbalance", imbalance)
	}
	if !obs.Enabled() {
		return
	}
	r := obs.Default()
	for i, d := range durs {
		if d <= 0 {
			continue
		}
		r.Histogram(MetricScatterShard, "Per-shard wall time of scattered solves.",
			obs.DefBuckets, obs.Labels{"shard": strconv.Itoa(i)}).Observe(d.Seconds())
	}
}

// recordCost folds one EXPLAIN ledger into the registry: the per-rule
// prune split and validation provenance that plain Stats cannot
// distinguish. Only explain'd solves reach here, so the rule counters
// aggregate exactly the queries whose responses carried a breakdown.
func recordCost(r *obs.Registry, alg string, c *Cost) {
	r.Counter(mExplained, "Queries solved with EXPLAIN accounting.",
		obs.Labels{"algo": alg}).Inc()
	for rule, n := range c.RuleBreakdown() {
		r.Counter(mPrunedRule, "Pairs pruned, split by rule.",
			obs.Labels{"algo": alg, "rule": rule}).Add(n)
	}
	r.Counter(mValidatedSrc, "Pairs validated, split by live scan vs plan memo.",
		obs.Labels{"algo": alg, "src": "live"}).Add(c.ValidatedLive)
	r.Counter(mValidatedSrc, "Pairs validated, split by live scan vs plan memo.",
		obs.Labels{"algo": alg, "src": "memo"}).Add(c.ValidatedMemo)
	r.Counter(mNodeVisits, "Candidate R-tree nodes visited by prune scans.",
		obs.Labels{"algo": alg}).Add(c.RTreeNodeVisits)
	if c.GridCellsScanned > 0 {
		r.Counter(mGridCells, "Grid cells examined by prune scans.",
			obs.Labels{"algo": alg}).Add(c.GridCellsScanned)
	}
}
