package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// costSolvers enumerates every solve path that threads a Cost ledger,
// each returning the influence result (nil Stats reuse res.Stats).
func costSolvers(workers int) []struct {
	name  string
	solve func(p *Problem) (*Result, error)
} {
	out := []struct {
		name  string
		solve func(p *Problem) (*Result, error)
	}{}
	for _, alg := range Algorithms() {
		alg := alg
		out = append(out, struct {
			name  string
			solve func(p *Problem) (*Result, error)
		}{alg.String(), func(p *Problem) (*Result, error) { return Solve(alg, p) }})
	}
	out = append(out, struct {
		name  string
		solve func(p *Problem) (*Result, error)
	}{"PIN-PAR", func(p *Problem) (*Result, error) { return PinocchioParallel(p, workers) }})
	return out
}

// checkCostIdentities asserts the ledger/Stats correspondence and the
// pair-partition identity that every solver must maintain.
func checkCostIdentities(t *testing.T, name string, c *Cost, st *Stats, m int) {
	t.Helper()
	if c.PairsTotal != st.PairsTotal {
		t.Errorf("%s: cost pairs %d != stats pairs %d", name, c.PairsTotal, st.PairsTotal)
	}
	if c.PrunedIA != st.PrunedByIA {
		t.Errorf("%s: cost ia %d != stats ia %d", name, c.PrunedIA, st.PrunedByIA)
	}
	if got := c.PrunedNIBBox + c.PrunedNIBArc; got != st.PrunedByNIB {
		t.Errorf("%s: cost nib %d (box %d + arc %d) != stats nib %d",
			name, got, c.PrunedNIBBox, c.PrunedNIBArc, st.PrunedByNIB)
	}
	if got := c.ValidatedLive + c.ValidatedMemo; got != st.Validated {
		t.Errorf("%s: cost validated %d (live %d + memo %d) != stats validated %d",
			name, got, c.ValidatedLive, c.ValidatedMemo, st.Validated)
	}
	if c.SkippedByBounds != st.SkippedByBounds {
		t.Errorf("%s: cost skipped %d != stats skipped %d", name, c.SkippedByBounds, st.SkippedByBounds)
	}
	if got := c.AccountedPairs(); got != c.PairsTotal {
		t.Errorf("%s: accounted %d of %d pairs: %v", name, got, c.PairsTotal, c)
	}
	if c.PositionProbes != st.PositionProbes {
		t.Errorf("%s: cost probes %d != stats probes %d", name, c.PositionProbes, st.PositionProbes)
	}

	vs := c.Verdicts()
	if len(vs) != m {
		t.Fatalf("%s: %d verdict rows, want %d", name, len(vs), m)
	}
	r := int(c.PairsTotal) / m
	counts := c.VerdictCounts()
	totalRows := 0
	for _, n := range counts {
		totalRows += n
	}
	if totalRows != m {
		t.Errorf("%s: verdict counts sum to %d, want %d (%v)", name, totalRows, m, counts)
	}
	for _, v := range vs {
		if got := v.PrunedIA + v.PrunedNIB + v.Validated + v.Skipped; got != r {
			t.Errorf("%s: candidate %d accounts for %d of %d pairs (%+v)", name, v.Index, got, r, v)
		}
		if v.PrunedNIB < 0 {
			t.Errorf("%s: candidate %d has negative NIB count (%+v)", name, v.Index, v)
		}
		if v.Verdict == "" {
			t.Errorf("%s: candidate %d has no verdict", name, v.Index)
		}
	}
	if counts[VerdictWinner] == 0 {
		t.Errorf("%s: no winner verdict (%v)", name, counts)
	}
}

// TestCostIdentities runs every solver with full accounting and checks
// the ledger against the Stats counters it refines.
func TestCostIdentities(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		p := randomProblem(rand.New(rand.NewSource(seed)), 90, 70, 0.7)
		m := len(p.Candidates)
		for _, s := range costSolvers(3) {
			p.Cost = &Cost{}
			p.Cost.EnableVerdicts(m)
			res, err := s.solve(p)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.name, err)
			}
			checkCostIdentities(t, s.name, p.Cost, &res.Stats, m)
			if p.Cost.PlanSource != "none" {
				t.Errorf("%s: plan source %q, want \"none\"", s.name, p.Cost.PlanSource)
			}
		}

		// Top-t certifies t winners instead of one.
		p.Cost = &Cost{}
		p.Cost.EnableVerdicts(m)
		ranked, st, err := PinocchioVOTopT(p, 5)
		if err != nil {
			t.Fatalf("seed %d topt: %v", seed, err)
		}
		checkCostIdentities(t, "PIN-VO-TOPT", p.Cost, st, m)
		if got := p.Cost.VerdictCounts()[VerdictWinner]; got != len(ranked) {
			t.Errorf("topt: %d winner verdicts, want %d", got, len(ranked))
		}

		// Ablations exercise the alternative accounting paths (full
		// scan, grid index, rules disabled).
		for _, ab := range []struct {
			name string
			cfg  Ablation
		}{
			{"ablated-default", Ablation{}},
			{"ablated-no-ia", Ablation{DisableIA: true}},
			{"ablated-no-nib", Ablation{DisableNIB: true}},
			{"ablated-linear", Ablation{LinearScan: true}},
			{"ablated-grid", Ablation{GridIndex: true}},
		} {
			p.Cost = &Cost{}
			p.Cost.EnableVerdicts(m)
			res, err := PinocchioAblated(p, ab.cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, ab.name, err)
			}
			checkCostIdentities(t, ab.name, p.Cost, &res.Stats, m)
			if ab.cfg.GridIndex && p.Cost.GridCellsScanned == 0 {
				t.Errorf("%s: no grid cells counted", ab.name)
			}
		}
		p.Cost = nil
	}
}

// TestCostExplainParity: attaching a Cost must not change any answer —
// the ledger observes the solve, it never steers it.
func TestCostExplainParity(t *testing.T) {
	for _, seed := range []int64{5, 17} {
		for _, s := range costSolvers(3) {
			plain := randomProblem(rand.New(rand.NewSource(seed)), 80, 60, 0.7)
			explained := randomProblem(rand.New(rand.NewSource(seed)), 80, 60, 0.7)
			explained.Cost = &Cost{}
			explained.Cost.EnableVerdicts(len(explained.Candidates))

			want, err := s.solve(plain)
			if err != nil {
				t.Fatalf("seed %d %s plain: %v", seed, s.name, err)
			}
			got, err := s.solve(explained)
			if err != nil {
				t.Fatalf("seed %d %s explained: %v", seed, s.name, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("seed %d %s: explain changed the result\nplain:     %+v\nexplained: %+v",
					seed, s.name, want, got)
			}
		}
	}
}

// TestCostWarmParity: a warm (plan-attached) solve must report the same
// per-rule split as the cold solve that built the plan — validations
// shift from live to memo and the R-tree walk is already paid for, but
// the rule attribution and pair partition are identical.
func TestCostWarmParity(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(23)), 90, 70, 0.7)
	m := len(p.Candidates)
	pl, err := BuildPlan(p, nil)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	warm := *p
	warm.Plan = pl

	for _, s := range costSolvers(3) {
		p.Cost = &Cost{}
		p.Cost.EnableVerdicts(m)
		if _, err := s.solve(p); err != nil {
			t.Fatalf("%s cold: %v", s.name, err)
		}
		warm.Cost = &Cost{}
		warm.Cost.EnableVerdicts(m)
		if _, err := s.solve(&warm); err != nil {
			t.Fatalf("%s warm: %v", s.name, err)
		}
		cold, hot := p.Cost, warm.Cost

		if !reflect.DeepEqual(cold.RuleBreakdown(), hot.RuleBreakdown()) {
			t.Errorf("%s: rule breakdown differs\ncold: %v\nwarm: %v",
				s.name, cold.RuleBreakdown(), hot.RuleBreakdown())
		}
		if cold.ValidatedLive+cold.ValidatedMemo != hot.ValidatedLive+hot.ValidatedMemo {
			t.Errorf("%s: validated total differs: cold %d+%d, warm %d+%d",
				s.name, cold.ValidatedLive, cold.ValidatedMemo, hot.ValidatedLive, hot.ValidatedMemo)
		}
		if cold.SkippedByBounds != hot.SkippedByBounds {
			t.Errorf("%s: skipped differs: cold %d, warm %d", s.name, cold.SkippedByBounds, hot.SkippedByBounds)
		}
		if hot.AccountedPairs() != hot.PairsTotal {
			t.Errorf("%s warm: accounted %d of %d pairs", s.name, hot.AccountedPairs(), hot.PairsTotal)
		}
		if hot.RTreeNodeVisits != 0 {
			t.Errorf("%s warm: %d node visits, want 0 (plan replay)", s.name, hot.RTreeNodeVisits)
		}
		// Only solvers that scan the candidate tree (evidenced by NIB
		// prunes) must count node visits; NA and PIN-VO* never touch it.
		if cold.PrunedNIBBox+cold.PrunedNIBArc > 0 && cold.RTreeNodeVisits == 0 {
			t.Errorf("%s cold: no node visits counted", s.name)
		}
		if !reflect.DeepEqual(cold.Verdicts(), hot.Verdicts()) {
			t.Errorf("%s: verdict tables differ across plan replay", s.name)
		}
		if hot.PlanSource != "attached" {
			t.Errorf("%s warm: plan source %q, want \"attached\"", s.name, hot.PlanSource)
		}
	}
}

// TestCostNilZeroAlloc is the zero-overhead guarantee for the disabled
// path: every recording method on a nil *Cost must allocate nothing.
func TestCostNilZeroAlloc(t *testing.T) {
	var c *Cost
	allocs := testing.AllocsPerRun(100, func() {
		c.pruneIA(3)
		c.addNIB(2, 5)
		c.validated(1, false)
		c.validated(1, true)
		c.skip(4, 2)
		c.AddPositionProbes(7)
		c.SetPlanSource("none")
		c.EnableVerdicts(10)
		c.merge(nil)
		_ = c.nodeCounter()
		_ = c.GridCellCounter()
		_ = c.workerChild()
		_ = c.AccountedPairs()
	})
	if allocs != 0 {
		t.Errorf("nil *Cost recording allocates %.1f per run, want 0", allocs)
	}
}

// BenchmarkSolveWarmNoExplain is the allocation guard for the serving
// hot path: a plan-replay PIN-VO solve with accounting disabled. Run
// with -benchmem; the explain layer must not show up here.
func BenchmarkSolveWarmNoExplain(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(23)), 90, 70, 0.7)
	pl, err := BuildPlan(p, nil)
	if err != nil {
		b.Fatalf("BuildPlan: %v", err)
	}
	p.Plan = pl
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PinocchioVO(p); err != nil {
			b.Fatal(err)
		}
	}
}
