package core

import (
	"container/heap"
	"time"
)

// candHeap orders candidate indices by maxInf descending, breaking
// ties by minInf descending — the Max Heap H of Algorithm 3 (line 13).
// Keys of non-top elements never change while they sit in the heap
// (validation only mutates the bounds of the candidate being
// processed), so the heap property is preserved without re-sifting.
type candHeap struct {
	order  []int
	maxInf []int
	minInf []int
}

func (h *candHeap) Len() int { return len(h.order) }
func (h *candHeap) Less(i, j int) bool {
	a, b := h.order[i], h.order[j]
	if h.maxInf[a] != h.maxInf[b] {
		return h.maxInf[a] > h.maxInf[b]
	}
	return h.minInf[a] > h.minInf[b]
}
func (h *candHeap) Swap(i, j int)      { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *candHeap) Push(x interface{}) { h.order = append(h.order, x.(int)) }
func (h *candHeap) Pop() interface{} {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// voState is the shared machinery of PINOCCHIO-VO and PINOCCHIO-VO*:
// influence bounds, verification sets and the Strategy 1/2 validation
// loop.
type voState struct {
	p      *Problem
	cost   *Cost   // aliases p.Cost; nil disables EXPLAIN accounting
	minInf []int   // identified influence (lower bound)
	maxInf []int   // possible influence (upper bound)
	vs     [][]int // verification set: object indices per candidate
	// out mirrors vs with the plan's memoized validation outcome per
	// pair; nil entries (and a nil out, as in VO*) validate live.
	out [][]*valOutcome
}

// validatePair decides the remnant pair (candidate top, vs index vi),
// replaying the plan's memoized verdict when the prune phase collected
// one and running the early-stopping scan otherwise.
func (s *voState) validatePair(top, vi, ok int, st *Stats) bool {
	obj := s.p.Objects[ok]
	if s.out != nil {
		if o := s.out[top][vi]; o != nil {
			s.cost.validated(top, true)
			return replayEarlyStop(o, obj.N(), st)
		}
	}
	s.cost.validated(top, false)
	return influencedEarlyStop(s.p.PF, s.p.Tau, s.p.Candidates[top], obj.Positions, st)
}

// runValidation executes lines 13-29 of Algorithm 3 and returns the
// optimal candidate index and its exact influence. The heap-ordered
// loop is the VO "validate" phase; it reports its heap behavior on
// the phase span. A done Problem.Ctx aborts the loop with the
// context's error.
func (s *voState) runValidation(st *Stats) (bestIdx, bestVal int, err error) {
	valSp := s.p.Obs.Child("validate")
	defer func() {
		valSp.SetAttr("heap_pops", st.HeapPops)
		valSp.SetAttr("skipped_by_bounds", st.SkippedByBounds)
		valSp.End()
	}()
	m := len(s.p.Candidates)

	// maxminInf = max over minInf after pruning; it only grows.
	bestIdx, bestVal = 0, s.minInf[0]
	for c := 1; c < m; c++ {
		if s.minInf[c] > bestVal {
			bestIdx, bestVal = c, s.minInf[c]
		}
	}
	maxminInf := bestVal

	h := &candHeap{order: make([]int, m), maxInf: s.maxInf, minInf: s.minInf}
	for i := range h.order {
		h.order[i] = i
	}
	heap.Init(h)

	cc := canceller{ctx: s.p.Ctx}
	for h.Len() > 0 {
		top := h.order[0]
		if s.maxInf[top] < maxminInf {
			// Strategy 1: every remaining candidate is dominated.
			for _, c := range h.order {
				st.SkippedByBounds += int64(len(s.vs[c]))
				s.cost.skip(c, len(s.vs[c]))
			}
			break
		}
		st.HeapPops++
		for vi, ok := range s.vs[top] {
			if err := cc.tick(); err != nil {
				return 0, 0, err
			}
			st.Validated++
			if s.validatePair(top, vi, ok, st) {
				s.minInf[top]++
			} else {
				s.maxInf[top]--
				if s.maxInf[top] < maxminInf {
					// Strategy 1 inside validation: the candidate can
					// no longer win; skip its remaining objects.
					st.SkippedByBounds += int64(len(s.vs[top]) - vi - 1)
					s.cost.skip(top, len(s.vs[top])-vi-1)
					break
				}
			}
		}
		if s.minInf[top] > bestVal {
			bestIdx, bestVal = top, s.minInf[top]
		}
		if s.minInf[top] > maxminInf {
			maxminInf = s.minInf[top]
		}
		heap.Pop(h)
	}
	return bestIdx, bestVal, nil
}

// PinocchioVO is Algorithm 3: the PINOCCHIO pruning phase feeding the
// bound-ordered validation of §5 (Strategy 1 upper/lower influence
// bounds, Strategy 2 early stopping). It certifies the optimal
// candidate without computing exact influence for dominated ones, so
// Result.Influences is nil.
func PinocchioVO(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := len(p.Candidates)
	res := &Result{}
	st := &res.Stats
	st.PairsTotal = int64(len(p.Objects)) * int64(m)

	a2d, tree, prunes := p.solveState(st)

	s := &voState{
		p:      p,
		cost:   p.Cost,
		minInf: make([]int, m),
		maxInf: make([]int, m),
		vs:     make([][]int, m),
		out:    make([][]*valOutcome, m),
	}
	// Unlike Algorithm 2 the VO prune loop defers all validation, so
	// the prune span is pure pruning time.
	pruneSp := p.Obs.Child("prune")
	cc := canceller{ctx: p.Ctx}
	for k, e := range a2d {
		k := k
		if err := cc.tick(); err != nil {
			pruneSp.End()
			return nil, err
		}
		touched, ia, arcs := scanObject(tree, prunes, k, e, s.cost.nodeCounter(),
			func(cand int) {
				s.cost.pruneIA(cand)
				s.minInf[cand]++
			},
			func(cand int, out *valOutcome) {
				s.vs[cand] = append(s.vs[cand], k)
				s.out[cand] = append(s.out[cand], out)
			})
		st.PrunedByIA += ia
		st.PrunedByNIB += int64(m) - touched
		s.cost.addNIB(arcs, int64(m)-touched-arcs)
	}
	// maxInf(c) = r − #objects whose NIB excludes c
	//           = IA hits + |VS(c)|.
	for c := 0; c < m; c++ {
		s.maxInf[c] = s.minInf[c] + len(s.vs[c])
	}
	pruneSp.End()

	var err error
	res.BestIndex, res.BestInfluence, err = s.runValidation(st)
	if err != nil {
		return nil, err
	}
	s.cost.finishVO(p, st, s.minInf, s.maxInf, res.BestIndex)
	finishSolve(p.Obs, AlgPinocchioVO.String(), start, st, s.cost)
	return res, nil
}

// PinocchioVOStar is the PIN-VO* ablation of §6.1: the validation
// optimizations (Strategies 1 and 2) without the pruning phase. Every
// candidate starts with bounds [0, r] and a verification set holding
// all objects. Having no pruning phase it uses none of the derived
// state a Problem.Plan carries, so an attached plan is ignored.
func PinocchioVOStar(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := len(p.Candidates)
	r := len(p.Objects)
	res := &Result{}
	st := &res.Stats
	st.PairsTotal = int64(r) * int64(m)

	all := make([]int, r)
	for k := range all {
		all[k] = k
	}
	s := &voState{
		p:      p,
		cost:   p.Cost,
		minInf: make([]int, m),
		maxInf: make([]int, m),
		vs:     make([][]int, m),
	}
	for c := 0; c < m; c++ {
		s.maxInf[c] = r
		s.vs[c] = all
	}

	var err error
	res.BestIndex, res.BestInfluence, err = s.runValidation(st)
	if err != nil {
		return nil, err
	}
	s.cost.finishVO(p, st, s.minInf, s.maxInf, res.BestIndex)
	finishSolve(p.Obs, AlgPinocchioVOStar.String(), start, st, s.cost)
	return res, nil
}
