package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"pinocchio/internal/geo"
	"pinocchio/internal/object"
	"pinocchio/internal/probfn"
)

// cancelProblem builds an instance big enough that every solver's scan
// loop passes at least one cancellation check boundary.
func cancelProblem(t *testing.T) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	objs := make([]*object.Object, 120)
	for i := range objs {
		pts := make([]geo.Point, 40)
		for j := range pts {
			pts[j] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		o, err := object.New(i, pts)
		if err != nil {
			t.Fatalf("object.New: %v", err)
		}
		objs[i] = o
	}
	cands := make([]geo.Point, 80)
	for i := range cands {
		cands[i] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	return &Problem{Objects: objs, Candidates: cands, PF: probfn.DefaultPowerLaw(), Tau: 0.7}
}

func TestSolversReturnContextError(t *testing.T) {
	solvers := map[string]func(p *Problem) (*Result, error){
		"NA":      NA,
		"PIN":     Pinocchio,
		"PIN-VO":  PinocchioVO,
		"PIN-VO*": PinocchioVOStar,
		"PIN-PAR": func(p *Problem) (*Result, error) { return PinocchioParallel(p, 4) },
	}
	for name, solve := range solvers {
		t.Run(name+"/expired", func(t *testing.T) {
			p := cancelProblem(t)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			p.Ctx = ctx
			if _, err := solve(p); !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
		})
		t.Run(name+"/deadline", func(t *testing.T) {
			p := cancelProblem(t)
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			defer cancel()
			p.Ctx = ctx
			if _, err := solve(p); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("want context.DeadlineExceeded, got %v", err)
			}
		})
	}
}

func TestTopTReturnsContextError(t *testing.T) {
	p := cancelProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Ctx = ctx
	if _, _, err := PinocchioVOTopT(p, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestNilCtxStillSolves guards the library default: no context, no
// cancellation, identical results.
func TestNilCtxStillSolves(t *testing.T) {
	p := cancelProblem(t)
	res, err := PinocchioVO(p)
	if err != nil {
		t.Fatalf("PinocchioVO: %v", err)
	}
	ref, err := NA(cancelProblem(t))
	if err != nil {
		t.Fatalf("NA: %v", err)
	}
	if res.BestInfluence != ref.BestInfluence {
		t.Fatalf("VO influence %d != NA influence %d", res.BestInfluence, ref.BestInfluence)
	}
}
