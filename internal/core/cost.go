package core

// cost.go implements the query-EXPLAIN accounting layer: a Cost value
// attached to Problem.Cost counts per-phase work — which prune rule
// settled each object/candidate pair, whether remnant pairs were
// validated live or replayed from a plan memo, how many index nodes
// the scans touched — and optionally classifies every candidate into a
// verdict table. All recording methods are nil-receiver-safe, so the
// disabled path (Cost == nil, the default) costs a pointer test and
// zero allocations.

import "fmt"

// Prune-rule names of the explain taxonomy (DESIGN.md §11). The
// classic Stats.PrunedByNIB counter is the sum of the two nib rules.
const (
	// RuleIA: the influence-arcs rule — the candidate certainly
	// influences the object, no validation needed.
	RuleIA = "ia"
	// RuleNIBBox: the candidate lies outside the NIB bounding box and
	// was never touched by the A2D-radius index scan; it is pruned
	// implicitly by the range query (Lemma 3 via the box
	// over-approximation).
	RuleNIBBox = "nib-box"
	// RuleNIBArc: the candidate was touched by the box scan but lies
	// outside the rounded NIB region — pruned by the exact per-point
	// Lemma 3 test.
	RuleNIBArc = "nib-arc"
)

// Verdict values of the per-candidate explain table. Exactly one
// verdict is assigned per candidate, so the verdict counts sum to the
// candidate-set size.
const (
	VerdictWinner    = "winner"    // selected best (or in the top-t)
	VerdictValidated = "validated" // at least one pair validated, not a winner
	VerdictSkipped   = "skipped"   // eliminated by the Strategy 1 bounds
	VerdictPruned    = "pruned"    // every pair settled by a prune rule
)

// Cost is one solve's work-accounting ledger. The exported counters
// are the wire format of the explain response; unexported per-candidate
// tables exist only after EnableVerdicts and feed the verdict table.
//
// The per-pair buckets partition PairsTotal: PrunedIA + PrunedNIBBox +
// PrunedNIBArc + ValidatedLive + ValidatedMemo + SkippedByBounds ==
// PairsTotal for every solver (AccountedPairs returns the left side).
type Cost struct {
	// PairsTotal is r·m, copied from Stats at finish.
	PairsTotal int64 `json:"pairs_total"`
	// PrunedIA splits Stats.PrunedByIA out per rule (it equals it).
	PrunedIA int64 `json:"pruned_ia"`
	// PrunedNIBBox + PrunedNIBArc == Stats.PrunedByNIB.
	PrunedNIBBox int64 `json:"pruned_nib_box"`
	PrunedNIBArc int64 `json:"pruned_nib_arc"`
	// ValidatedLive + ValidatedMemo == Stats.Validated: pairs decided
	// by a live probability scan vs replayed from a plan's memoized
	// outcome.
	ValidatedLive int64 `json:"validated_live"`
	ValidatedMemo int64 `json:"validated_memo"`
	// SkippedByBounds mirrors Stats.SkippedByBounds (Strategy 1).
	SkippedByBounds int64 `json:"skipped_by_bounds"`
	// RTreeNodeVisits counts candidate R-tree nodes whose entries a
	// scan examined. Warm solves replay the memoized classification and
	// legitimately report 0 — the plan already paid for the tree walk.
	RTreeNodeVisits int64 `json:"rtree_node_visits"`
	// GridCellsScanned counts uniform-grid cells examined (the
	// footnote-2 alternative index; nonzero only under Ablation.GridIndex
	// or grid-backed baselines).
	GridCellsScanned int64 `json:"grid_cells_scanned,omitempty"`
	// PositionProbes copies Stats.PositionProbes: PF evaluations, the
	// "object positions touched" axis.
	PositionProbes int64 `json:"position_probes"`

	// PlanSource records solve-state provenance: "none" (built inline
	// for this solve), "attached" (caller supplied a prebuilt plan), or
	// the serving layer's "built"/"cached" (plan-cache miss/hit).
	PlanSource string `json:"plan_source,omitempty"`
	// ResultCache is set by the serving layer: "hit" when the response
	// came from the result cache (the counters then describe the solve
	// that populated it), "miss" when this request solved.
	ResultCache string `json:"result_cache,omitempty"`

	// Per-candidate tables, allocated by EnableVerdicts; int32 bounds
	// the memory at 12 bytes per candidate.
	candIA   []int32
	candVal  []int32
	candSkip []int32
	verdicts []CandVerdict
}

// CandVerdict is one row of the per-candidate explain table: how the
// solve disposed of each of the candidate's r pairs and the influence
// bounds at termination (equal for exact solvers).
type CandVerdict struct {
	Index     int    `json:"index"`
	Verdict   string `json:"verdict"`
	PrunedIA  int    `json:"pruned_ia"`
	PrunedNIB int    `json:"pruned_nib"`
	Validated int    `json:"validated"`
	Skipped   int    `json:"skipped"`
	MinInf    int    `json:"min_influence"`
	MaxInf    int    `json:"max_influence"`
}

// EnableVerdicts allocates the per-candidate tables for an m-candidate
// problem. Without it the Cost stays allocation-free and the verdict
// table is nil.
func (c *Cost) EnableVerdicts(m int) {
	if c == nil {
		return
	}
	c.candIA = make([]int32, m)
	c.candVal = make([]int32, m)
	c.candSkip = make([]int32, m)
}

// nodeCounter returns the R-tree visit counter to hand to the Counted
// search variants, or nil when accounting is off (selecting their
// zero-overhead path).
func (c *Cost) nodeCounter() *int64 {
	if c == nil {
		return nil
	}
	return &c.RTreeNodeVisits
}

// RTreeNodeCounter is the exported nodeCounter for packages outside
// core (the baselines) that drive Counted index searches.
func (c *Cost) RTreeNodeCounter() *int64 { return c.nodeCounter() }

// GridCellCounter returns the grid-cell counter, nil when off.
func (c *Cost) GridCellCounter() *int64 {
	if c == nil {
		return nil
	}
	return &c.GridCellsScanned
}

// SetPlanSource stamps plan provenance; the serving layer uses
// "cached"/"built" for its plan-cache outcome, overriding the solver's
// "attached"/"none" default.
func (c *Cost) SetPlanSource(src string) {
	if c != nil {
		c.PlanSource = src
	}
}

// AddPositionProbes accumulates PF/position touches for callers with
// no Stats to copy from (the baselines). Core solvers instead copy
// Stats.PositionProbes at finish.
func (c *Cost) AddPositionProbes(n int64) {
	if c != nil {
		c.PositionProbes += n
	}
}

// pruneIA records one pair settled by the influence-arcs rule.
func (c *Cost) pruneIA(cand int) {
	if c == nil {
		return
	}
	c.PrunedIA++
	if c.candIA != nil {
		c.candIA[cand]++
	}
}

// addNIB records a scan's non-influence prunes: arc pairs were touched
// and rejected by the exact Lemma 3 test, box pairs were never touched.
func (c *Cost) addNIB(arc, box int64) {
	if c == nil {
		return
	}
	c.PrunedNIBArc += arc
	c.PrunedNIBBox += box
}

// validated records one validated pair; memo reports a plan replay.
func (c *Cost) validated(cand int, memo bool) {
	if c == nil {
		return
	}
	if memo {
		c.ValidatedMemo++
	} else {
		c.ValidatedLive++
	}
	if c.candVal != nil {
		c.candVal[cand]++
	}
}

// skip records n of a candidate's pairs eliminated by Strategy 1.
func (c *Cost) skip(cand int, n int) {
	if c == nil || n == 0 {
		return
	}
	c.SkippedByBounds += int64(n)
	if c.candSkip != nil {
		c.candSkip[cand] += int32(n)
	}
}

// workerChild returns a private Cost for one shard of a data-parallel
// solve (nil when accounting is off), with verdict tables matching the
// parent's. Shards record contention-free and the parent merges.
func (c *Cost) workerChild() *Cost {
	if c == nil {
		return nil
	}
	w := &Cost{}
	if c.candIA != nil {
		w.EnableVerdicts(len(c.candIA))
	}
	return w
}

// merge folds a worker shard's ledger into c. Totals and provenance
// are not merged — finish fills them on the parent.
func (c *Cost) merge(o *Cost) {
	if c == nil || o == nil {
		return
	}
	c.PrunedIA += o.PrunedIA
	c.PrunedNIBBox += o.PrunedNIBBox
	c.PrunedNIBArc += o.PrunedNIBArc
	c.ValidatedLive += o.ValidatedLive
	c.ValidatedMemo += o.ValidatedMemo
	c.SkippedByBounds += o.SkippedByBounds
	c.RTreeNodeVisits += o.RTreeNodeVisits
	c.GridCellsScanned += o.GridCellsScanned
	for i, v := range o.candIA {
		c.candIA[i] += v
	}
	for i, v := range o.candVal {
		c.candVal[i] += v
	}
	for i, v := range o.candSkip {
		c.candSkip[i] += v
	}
}

// AccountedPairs sums every per-pair bucket; complete accounting makes
// it equal PairsTotal.
func (c *Cost) AccountedPairs() int64 {
	if c == nil {
		return 0
	}
	return c.PrunedIA + c.PrunedNIBBox + c.PrunedNIBArc +
		c.ValidatedLive + c.ValidatedMemo + c.SkippedByBounds
}

// PruneRatio is Stats.PruneRatio over the rule-split counters.
func (c *Cost) PruneRatio() float64 {
	if c == nil || c.PairsTotal == 0 {
		return 0
	}
	return float64(c.PrunedIA+c.PrunedNIBBox+c.PrunedNIBArc) / float64(c.PairsTotal)
}

// RuleBreakdown returns the per-rule prune counts keyed by rule name.
func (c *Cost) RuleBreakdown() map[string]int64 {
	if c == nil {
		return nil
	}
	return map[string]int64{
		RuleIA:     c.PrunedIA,
		RuleNIBBox: c.PrunedNIBBox,
		RuleNIBArc: c.PrunedNIBArc,
	}
}

// Verdicts returns the per-candidate table, nil unless EnableVerdicts
// was called before the solve.
func (c *Cost) Verdicts() []CandVerdict {
	if c == nil {
		return nil
	}
	return c.verdicts
}

// VerdictCounts tallies the table by verdict; the values sum to the
// candidate-set size.
func (c *Cost) VerdictCounts() map[string]int {
	if c == nil || c.verdicts == nil {
		return nil
	}
	out := make(map[string]int, 4)
	for i := range c.verdicts {
		out[c.verdicts[i].Verdict]++
	}
	return out
}

// String implements fmt.Stringer.
func (c *Cost) String() string {
	if c == nil {
		return "cost{nil}"
	}
	return fmt.Sprintf(
		"cost{pairs=%d ia=%d nibBox=%d nibArc=%d valLive=%d valMemo=%d skipped=%d rtreeNodes=%d gridCells=%d probes=%d plan=%q}",
		c.PairsTotal, c.PrunedIA, c.PrunedNIBBox, c.PrunedNIBArc,
		c.ValidatedLive, c.ValidatedMemo, c.SkippedByBounds,
		c.RTreeNodeVisits, c.GridCellsScanned, c.PositionProbes, c.PlanSource)
}

// finalize copies the totals from the solve's Stats and stamps default
// plan provenance (the serving layer overrides PlanSource with its
// plan-cache outcome before the solve).
func (c *Cost) finalize(p *Problem, st *Stats) {
	if c == nil {
		return
	}
	c.PairsTotal = st.PairsTotal
	c.PositionProbes = st.PositionProbes
	if c.PlanSource == "" {
		if p.Plan != nil {
			c.PlanSource = "attached"
		} else {
			c.PlanSource = "none"
		}
	}
}

// buildVerdicts fills the per-candidate table. minInf/maxInf are the
// influence bounds at termination; winner flags the selected
// candidate(s). The per-candidate NIB count is derived: of the r pairs,
// whatever IA, validation and Strategy 1 did not account for was pruned
// by one of the two NIB rules.
func (c *Cost) buildVerdicts(minInf, maxInf []int, winner func(int) bool) {
	if c == nil || c.candIA == nil {
		return
	}
	m := len(c.candIA)
	r := 0
	if m > 0 {
		r = int(c.PairsTotal) / m
	}
	c.verdicts = make([]CandVerdict, m)
	for i := 0; i < m; i++ {
		v := CandVerdict{
			Index:     i,
			PrunedIA:  int(c.candIA[i]),
			Validated: int(c.candVal[i]),
			Skipped:   int(c.candSkip[i]),
			MinInf:    minInf[i],
			MaxInf:    maxInf[i],
		}
		v.PrunedNIB = r - v.PrunedIA - v.Validated - v.Skipped
		switch {
		case winner(i):
			v.Verdict = VerdictWinner
		case v.Skipped > 0:
			v.Verdict = VerdictSkipped
		case v.Validated > 0:
			v.Verdict = VerdictValidated
		default:
			v.Verdict = VerdictPruned
		}
		c.verdicts[i] = v
	}
}

// finishExact closes accounting for a solver that computed exact
// influence for every candidate (NA, PIN, PIN-PAR, ablations).
func (c *Cost) finishExact(p *Problem, st *Stats, influences []int, best int) {
	if c == nil {
		return
	}
	c.finalize(p, st)
	c.buildVerdicts(influences, influences, func(i int) bool { return i == best })
}

// finishVO closes accounting for a bound-ordered solver: minInf/maxInf
// are the bounds at termination (exact only for the winner).
func (c *Cost) finishVO(p *Problem, st *Stats, minInf, maxInf []int, best int) {
	if c == nil {
		return
	}
	c.finalize(p, st)
	c.buildVerdicts(minInf, maxInf, func(i int) bool { return i == best })
}

// finishTopT closes accounting for the top-t solver; every certified
// candidate is a winner.
func (c *Cost) finishTopT(p *Problem, st *Stats, minInf, maxInf []int, ranked []Ranked) {
	if c == nil {
		return
	}
	c.finalize(p, st)
	win := make(map[int]bool, len(ranked))
	for _, r := range ranked {
		win[r.Index] = true
	}
	c.buildVerdicts(minInf, maxInf, func(i int) bool { return win[i] })
}
