package core

import (
	"math/rand"
	"testing"
)

// TestParallelMatchesSequential: sharding must not change anything but
// wall-clock. Run with -race to exercise the concurrency claims.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	for trial := 0; trial < 8; trial++ {
		p := randomProblem(rng, 50+rng.Intn(100), 40+rng.Intn(60), 0.3+0.2*float64(trial%3))
		seq, err := Pinocchio(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 17} {
			par, err := PinocchioParallel(p, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for j := range seq.Influences {
				if par.Influences[j] != seq.Influences[j] {
					t.Fatalf("trial %d workers=%d: influence[%d] = %d, want %d",
						trial, workers, j, par.Influences[j], seq.Influences[j])
				}
			}
			if par.BestIndex != seq.BestIndex {
				t.Fatalf("trial %d workers=%d: best %d, want %d",
					trial, workers, par.BestIndex, seq.BestIndex)
			}
			// The pruning counters are deterministic regardless of
			// sharding (probes/early stops depend only on per-pair
			// work, which is identical).
			if par.Stats.PrunedByIA != seq.Stats.PrunedByIA ||
				par.Stats.PrunedByNIB != seq.Stats.PrunedByNIB ||
				par.Stats.Validated != seq.Stats.Validated {
				t.Fatalf("trial %d workers=%d: stats diverged: %v vs %v",
					trial, workers, par.Stats, seq.Stats)
			}
		}
	}
}

func TestParallelDefaultsWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	p := randomProblem(rng, 30, 20, 0.7)
	res, err := PinocchioParallel(p, 0) // 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := Pinocchio(p)
	if res.BestInfluence != seq.BestInfluence {
		t.Errorf("default workers: influence %d vs %d", res.BestInfluence, seq.BestInfluence)
	}
	// More workers than objects clamps without error.
	if _, err := PinocchioParallel(p, 10000); err != nil {
		t.Errorf("huge worker count: %v", err)
	}
	if _, err := PinocchioParallel(&Problem{}, 2); err == nil {
		t.Error("invalid problem should error")
	}
}
