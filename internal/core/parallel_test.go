package core

import (
	"math/rand"
	"runtime"
	"testing"

	"pinocchio/internal/obs"
)

// TestParallelMatchesSequential: sharding must not change anything but
// wall-clock. Run with -race to exercise the concurrency claims.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	for trial := 0; trial < 8; trial++ {
		p := randomProblem(rng, 50+rng.Intn(100), 40+rng.Intn(60), 0.3+0.2*float64(trial%3))
		seq, err := Pinocchio(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 17} {
			par, err := PinocchioParallel(p, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for j := range seq.Influences {
				if par.Influences[j] != seq.Influences[j] {
					t.Fatalf("trial %d workers=%d: influence[%d] = %d, want %d",
						trial, workers, j, par.Influences[j], seq.Influences[j])
				}
			}
			if par.BestIndex != seq.BestIndex {
				t.Fatalf("trial %d workers=%d: best %d, want %d",
					trial, workers, par.BestIndex, seq.BestIndex)
			}
			// The pruning counters are deterministic regardless of
			// sharding (probes/early stops depend only on per-pair
			// work, which is identical).
			if par.Stats.PrunedByIA != seq.Stats.PrunedByIA ||
				par.Stats.PrunedByNIB != seq.Stats.PrunedByNIB ||
				par.Stats.Validated != seq.Stats.Validated {
				t.Fatalf("trial %d workers=%d: stats diverged: %v vs %v",
					trial, workers, par.Stats, seq.Stats)
			}
		}
	}
}

// TestParallelParityAcrossWorkerCounts pins down the contract the
// observability layer relies on: PinocchioParallel must return the
// same Influences and best pick as sequential Pinocchio for every
// worker count, and its full Stats (including probes and early stops,
// which differ from Pinocchio's full-product validator) must not
// depend on the worker count. Run under -race this also exercises the
// per-worker span instrumentation.
func TestParallelParityAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4711))
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 4; trial++ {
		p := randomProblem(rng, 60+rng.Intn(80), 30+rng.Intn(50), 0.4+0.15*float64(trial))
		seq, err := Pinocchio(p)
		if err != nil {
			t.Fatal(err)
		}
		var ref *Result
		for _, workers := range workerCounts {
			tp := *p
			tp.Obs = obs.NewSpan("pin-par")
			par, err := PinocchioParallel(&tp, workers)
			tp.Obs.End()
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for j := range seq.Influences {
				if par.Influences[j] != seq.Influences[j] {
					t.Fatalf("trial %d workers=%d: influence[%d] = %d, want %d",
						trial, workers, j, par.Influences[j], seq.Influences[j])
				}
			}
			if par.BestIndex != seq.BestIndex || par.BestInfluence != seq.BestInfluence {
				t.Fatalf("trial %d workers=%d: best (%d,%d), want (%d,%d)", trial, workers,
					par.BestIndex, par.BestInfluence, seq.BestIndex, seq.BestInfluence)
			}
			// Per-pair work is sharding-invariant, so the merged Stats
			// must be identical for every worker count.
			if ref == nil {
				ref = par
			} else if par.Stats != ref.Stats {
				t.Fatalf("trial %d workers=%d: stats depend on sharding:\n%v\n%v",
					trial, workers, par.Stats, ref.Stats)
			}
			// The sharding-invariant subset also matches the sequential
			// solver (probes/early stops differ by design: Pinocchio
			// validates with the full product).
			if par.Stats.PairsTotal != seq.Stats.PairsTotal ||
				par.Stats.PrunedByIA != seq.Stats.PrunedByIA ||
				par.Stats.PrunedByNIB != seq.Stats.PrunedByNIB ||
				par.Stats.Validated != seq.Stats.Validated ||
				par.Stats.DistinctN != seq.Stats.DistinctN {
				t.Fatalf("trial %d workers=%d: stats diverged from sequential:\n%v\n%v",
					trial, workers, par.Stats, seq.Stats)
			}
			// The per-worker trace must cover every worker, with the
			// validate phases accounting for all validated pairs.
			workerSpans := 0
			for _, c := range tp.Obs.Children() {
				if st, ok := c.Attr("stats").(Stats); ok {
					workerSpans++
					if st.PairsTotal != 0 {
						t.Fatalf("worker span should carry shard-only pairs: %v", st)
					}
				}
			}
			if workerSpans != workers && workerSpans != len(p.Objects) {
				t.Fatalf("trial %d: %d worker spans for %d workers", trial, workerSpans, workers)
			}
		}
	}
}

func TestParallelDefaultsWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	p := randomProblem(rng, 30, 20, 0.7)
	res, err := PinocchioParallel(p, 0) // 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := Pinocchio(p)
	if res.BestInfluence != seq.BestInfluence {
		t.Errorf("default workers: influence %d vs %d", res.BestInfluence, seq.BestInfluence)
	}
	// More workers than objects clamps without error.
	if _, err := PinocchioParallel(p, 10000); err != nil {
		t.Errorf("huge worker count: %v", err)
	}
	if _, err := PinocchioParallel(&Problem{}, 2); err == nil {
		t.Error("invalid problem should error")
	}
}
