package core

import (
	"strings"
	"testing"
)

func TestStatsStringIncludesEveryCounter(t *testing.T) {
	s := Stats{
		PairsTotal: 1, PrunedByIA: 2, PrunedByNIB: 3, Validated: 4,
		SkippedByBounds: 5, PositionProbes: 6, EarlyStops: 7, HeapPops: 8,
		DistinctN: 9,
	}
	out := s.String()
	for _, want := range []string{
		"pairs=1", "ia=2", "nib=3", "validated=4", "skipped=5",
		"probes=6", "earlyStops=7", "pops=8", "distinctN=9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Stats.String() = %q missing %q", out, want)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{
		PairsTotal: 10, PrunedByIA: 1, PrunedByNIB: 2, Validated: 3,
		SkippedByBounds: 4, PositionProbes: 5, EarlyStops: 6, HeapPops: 7,
		DistinctN: 12,
	}
	b := Stats{
		PairsTotal: 20, PrunedByIA: 10, PrunedByNIB: 20, Validated: 30,
		SkippedByBounds: 40, PositionProbes: 50, EarlyStops: 60, HeapPops: 70,
		DistinctN: 9,
	}
	a.Merge(b)
	want := Stats{
		PairsTotal: 30, PrunedByIA: 11, PrunedByNIB: 22, Validated: 33,
		SkippedByBounds: 44, PositionProbes: 55, EarlyStops: 66, HeapPops: 77,
		// DistinctN is a table size, not a flow: max, not sum.
		DistinctN: 12,
	}
	if a != want {
		t.Fatalf("Merge = %+v, want %+v", a, want)
	}
}
