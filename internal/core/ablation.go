package core

import (
	"pinocchio/internal/geo"
	"pinocchio/internal/grid"
	"pinocchio/internal/object"
	"pinocchio/internal/rtree"
)

// Ablation switches off individual design choices of PINOCCHIO so
// their contribution can be measured in isolation (the ablation
// benches of DESIGN.md).
type Ablation struct {
	// DisableIA drops the influence-arcs rule: IA-certain candidates
	// are validated like any remnant candidate.
	DisableIA bool
	// DisableNIB drops the non-influence-boundary rule: every
	// candidate not settled by IA is validated, and candidate
	// retrieval degenerates to a full scan.
	DisableNIB bool
	// DisableEarlyStop validates with the full cumulative product
	// instead of Lemma 4's early termination.
	DisableEarlyStop bool
	// LinearScan retrieves per-object candidates by scanning the
	// candidate slice instead of querying the R-tree.
	LinearScan bool
	// GridIndex retrieves per-object candidates from a uniform grid
	// instead of the R-tree (the footnote-2 alternative index).
	// Ignored when LinearScan or DisableNIB already force a scan.
	GridIndex bool
}

// PinocchioAblated is Pinocchio (Algorithm 2) with selected design
// choices disabled. With a zero Ablation it behaves exactly like
// Pinocchio apart from using the early-stopping validator, so it also
// serves as the "PIN with Strategy 2" configuration.
func PinocchioAblated(p *Problem, ab Ablation) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := len(p.Candidates)
	res := &Result{Influences: make([]int, m)}
	st := &res.Stats
	st.PairsTotal = int64(len(p.Objects)) * int64(m)

	a2d := buildA2D(p, st)

	validateFn := influencedEarlyStop
	if ab.DisableEarlyStop {
		validateFn = influencedFull
	}

	tree := p.candidateTree()
	var gridIdx *grid.Index
	if ab.GridIndex && !ab.LinearScan && !ab.DisableNIB {
		items := make([]grid.Item, len(p.Candidates))
		for i, c := range p.Candidates {
			items[i] = grid.Item{Point: c, ID: i}
		}
		var err error
		gridIdx, err = grid.New(items, 8)
		if err != nil {
			return nil, err
		}
	}

	cost := p.Cost
	for _, e := range a2d {
		// arcs counts classifier-driven NIB prunes this object; with a
		// full scan there is no box prune, so every NIB prune is an arc.
		arcs := int64(0)
		validate := func(cand int) {
			st.Validated++
			cost.validated(cand, false)
			if validateFn(p.PF, p.Tau, p.Candidates[cand], e.obj.Positions, st) {
				res.Influences[cand]++
			}
		}
		classify := func(cand int, pt geoPoint) {
			switch e.regions.Classify(pt) {
			case object.Influenced:
				if ab.DisableIA {
					validate(cand)
				} else {
					st.PrunedByIA++
					cost.pruneIA(cand)
					res.Influences[cand]++
				}
			case object.NeedsValidation:
				validate(cand)
			default:
				if ab.DisableNIB {
					validate(cand)
				} else {
					st.PrunedByNIB++
					arcs++
				}
			}
		}

		switch {
		case ab.DisableNIB || ab.LinearScan:
			// Full scan over candidates; NIB classification still
			// happens per candidate unless disabled.
			for cand, pt := range p.Candidates {
				classify(cand, pt)
			}
			cost.addNIB(arcs, 0)
		case gridIdx != nil:
			touched := int64(0)
			gridIdx.SearchRectCounted(e.regions.NIBBox(), func(it grid.Item) bool {
				touched++
				classify(it.ID, it.Point)
				return true
			}, cost.GridCellCounter())
			st.PrunedByNIB += int64(m) - touched
			cost.addNIB(arcs, int64(m)-touched)
		default:
			touched := int64(0)
			tree.SearchRectCounted(e.regions.NIBBox(), func(it rtreeItem) bool {
				touched++
				classify(it.ID, it.Point)
				return true
			}, cost.nodeCounter())
			// Candidates outside the NIB box were never touched; they
			// are pruned by Lemma 3. The box corners over-approximate
			// the rounded NIB region, so the classifier above may have
			// added some of the touched ones to PrunedByNIB already.
			st.PrunedByNIB += int64(m) - touched
			cost.addNIB(arcs, int64(m)-touched)
		}
	}

	res.BestIndex, res.BestInfluence = argmax(res.Influences)
	cost.finishExact(p, st, res.Influences, res.BestIndex)
	return res, nil
}

// geoPoint and rtreeItem shorten the closure signatures above.
type (
	geoPoint  = geo.Point
	rtreeItem = rtree.Item
)
