package core

import "sort"

// Ranked is a candidate with its exact influence, as used by the
// Top-K precision experiments (Tables 3 and 4).
type Ranked struct {
	Index     int
	Influence int
}

// RankAll computes the exact influence of every candidate with the
// PINOCCHIO pruning machinery and returns candidates sorted by
// influence descending, ties broken by ascending index for
// determinism.
func RankAll(p *Problem) ([]Ranked, error) {
	res, err := Pinocchio(p)
	if err != nil {
		return nil, err
	}
	ranked := make([]Ranked, len(res.Influences))
	for i, inf := range res.Influences {
		ranked[i] = Ranked{Index: i, Influence: inf}
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		if ranked[a].Influence != ranked[b].Influence {
			return ranked[a].Influence > ranked[b].Influence
		}
		return ranked[a].Index < ranked[b].Index
	})
	return ranked, nil
}

// TopK returns the indices of the k most influential candidates (all
// of them when k exceeds the candidate count).
func TopK(p *Problem, k int) ([]int, error) {
	ranked, err := RankAll(p)
	if err != nil {
		return nil, err
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	if k < 0 {
		k = 0
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].Index
	}
	return out, nil
}

// Algorithm identifies one of the solvers for harness code that sweeps
// over them.
type Algorithm int

// The solvers compared throughout §6.
const (
	AlgNA Algorithm = iota
	AlgPinocchio
	AlgPinocchioVO
	AlgPinocchioVOStar
)

// String implements fmt.Stringer, using the paper's labels.
func (a Algorithm) String() string {
	switch a {
	case AlgNA:
		return "NA"
	case AlgPinocchio:
		return "PIN"
	case AlgPinocchioVO:
		return "PIN-VO"
	case AlgPinocchioVOStar:
		return "PIN-VO*"
	default:
		return "unknown"
	}
}

// Solve dispatches to the selected algorithm, stamping the problem's
// trace ID onto the span tree and attaching that tree to the result.
func Solve(a Algorithm, p *Problem) (*Result, error) {
	p.stampTrace()
	var res *Result
	var err error
	switch a {
	case AlgNA:
		res, err = NA(p)
	case AlgPinocchio:
		res, err = Pinocchio(p)
	case AlgPinocchioVO:
		res, err = PinocchioVO(p)
	case AlgPinocchioVOStar:
		res, err = PinocchioVOStar(p)
	default:
		return nil, errUnknownAlgorithm(a)
	}
	if res != nil {
		res.Trace = p.Obs
	}
	return res, err
}

type errUnknownAlgorithm Algorithm

func (e errUnknownAlgorithm) Error() string {
	return "core: unknown algorithm"
}

// Algorithms lists the four solvers in the order the paper's figures
// plot them.
func Algorithms() []Algorithm {
	return []Algorithm{AlgNA, AlgPinocchio, AlgPinocchioVO, AlgPinocchioVOStar}
}
