package core

import (
	"math"
	"reflect"
	"runtime"
	"sync"

	"pinocchio/internal/geo"
	"pinocchio/internal/object"
	"pinocchio/internal/probfn"
	"pinocchio/internal/rtree"
)

// objPrune is the memoized prune phase for one object: the candidate
// indices the influence-arcs rule settles (ia) and the remnant set
// needing validation (vs), both in R-tree visit order, plus the
// validation outcome of each remnant pair (out, aligned with vs).
// Together with the candidate count they determine every prune- and
// validation-phase counter, so a replay produces Stats identical to a
// live scan.
type objPrune struct {
	ia  []int32
	vs  []int32
	out []valOutcome
	// arcs counts candidates the box scan touched but the exact
	// Lemma 3 test rejected (the "nib-arc" rule); replays feed it to
	// the Cost ledger so warm and cold solves report the same rule
	// split.
	arcs int32
}

// valOutcome memoizes one remnant pair's validation: the verdict and
// the probe count of the early-stopping scan (Strategy 2). The pair's
// decision depends only on (object, candidate, PF, τ) — exactly the
// plan key — so it is as cacheable as the radius table.
type valOutcome struct {
	probes int32
	inf    bool
}

// replayEarlyStop applies a memoized outcome exactly as
// influencedEarlyStop would have: same probe count, same early-stop
// accounting (the scan stopped before position n), same verdict.
func replayEarlyStop(o *valOutcome, n int, st *Stats) bool {
	st.PositionProbes += int64(o.probes)
	if o.inf && int(o.probes) < n {
		st.EarlyStops++
	}
	return o.inf
}

// replayFull applies a memoized outcome as influencedFull would have:
// every position probed, same verdict. The verdicts of the full and
// early-stopping scans always agree, in floating point too: both
// multiply the same factors in the same order against the same bar,
// and the partial products are non-increasing (every factor is in
// [0, 1], and IEEE rounding cannot lift a product above a representable
// upper bound), so stopping early never flips the comparison.
func replayFull(o *valOutcome, n int, st *Stats) bool {
	st.PositionProbes += int64(n)
	return o.inf
}

// CandTree is the epoch-keyed half of a Plan: the candidate R-tree,
// which depends only on the candidate set (and fan-out), not on the
// probability function or τ. A server keeps one per mutation epoch and
// shares it across every (PF, τ) plan built at that epoch.
type CandTree struct {
	cands  []geo.Point
	fanout int
	tree   *rtree.Tree
}

// NewCandTree bulk-loads the candidate set exactly like
// Problem.candidateTree; fanout 0 selects rtree.DefaultMaxEntries.
func NewCandTree(cands []geo.Point, fanout int) *CandTree {
	if fanout <= 0 {
		fanout = rtree.DefaultMaxEntries
	}
	items := make([]rtree.Item, len(cands))
	for i, c := range cands {
		items[i] = rtree.Item{Point: c, ID: i}
	}
	return &CandTree{cands: cands, fanout: fanout, tree: rtree.Bulk(items, fanout)}
}

// Plan is the prebuilt, immutable solve state for one (object set,
// candidate set, PF, τ) combination: the candidate R-tree, the A_2D
// array of Algorithm 1, the memoized prune classification of
// Algorithm 2's scan phase and the validation outcome of every remnant
// pair. A Plan is safe for concurrent use by any number of solves once
// built — nothing in it is mutated afterwards.
//
// Solvers given a Plan via Problem.Plan skip the build-a2d, build-rtree
// and R-tree scan work and replay the memoized classification and
// verdicts instead, producing byte-identical Results (including Stats)
// at O(pairs-touched) instead of O(build + scan + validate). With no
// Plan attached every solver keeps its original build-per-solve path,
// so library callers are unchanged.
type Plan struct {
	objects []*object.Object
	cands   []geo.Point
	pf      probfn.Func
	tau     float64
	fanout  int

	tree      *rtree.Tree
	a2d       []a2dEntry
	prunes    []objPrune // nil when the candidate count exceeds int32
	distinctN int
}

// planParallelMin is the object count below which plan construction
// stays sequential: goroutine fan-out costs more than it saves.
const planParallelMin = 2048

// BuildPlan precomputes the solve state for p. ct, when non-nil, must
// have been built over p.Candidates with p's fan-out (NewCandTree) —
// this lets a server reuse one tree across the (PF, τ) plans of an
// epoch; nil builds the tree here. Construction honors p.Ctx and
// parallelizes across objects for large instances.
func BuildPlan(p *Problem, ct *CandTree) (*Plan, error) {
	// Validate before touching anything, but without the plan-match
	// check (p.Plan, if any, is not the plan under construction).
	probe := *p
	probe.Plan = nil
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	pl := &Plan{
		objects: p.Objects,
		cands:   p.Candidates,
		pf:      p.PF,
		tau:     p.Tau,
		fanout:  p.fanout(),
	}
	if ct != nil && sameSlice(ct.cands, p.Candidates) && ct.fanout == pl.fanout {
		pl.tree = ct.tree
	} else {
		pl.tree = p.candidateTree()
	}

	workers := runtime.GOMAXPROCS(0)
	if len(p.Objects) < planParallelMin {
		workers = 1
	}
	pl.a2d, pl.distinctN = computeA2D(p.Objects, p.PF, p.Tau, workers)

	if len(p.Candidates) <= math.MaxInt32 {
		prunes, err := computePrunes(p, pl.tree, pl.a2d, workers)
		if err != nil {
			return nil, err
		}
		pl.prunes = prunes
	}
	return pl, nil
}

// computeA2D runs Algorithm 1 over an explicit object set. workers > 1
// shards objects across goroutines, each with a private minMaxRadius
// memo (re-deriving a radius per worker is cheaper than sharing a
// locked table); the reported distinct-n count is the union across
// shards, matching the sequential table size.
func computeA2D(objects []*object.Object, pf probfn.Func, tau float64, workers int) ([]a2dEntry, int) {
	a2d := make([]a2dEntry, len(objects))
	if workers <= 1 || len(objects) < workers {
		hm := object.NewRadiusTable(pf, tau)
		for k, o := range objects {
			a2d[k] = a2dEntry{obj: o, regions: object.NewRegions(o, hm.Get(o.N()))}
		}
		return a2d, hm.Len()
	}
	seen := make([]map[int]struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hm := object.NewRadiusTable(pf, tau)
			ns := map[int]struct{}{}
			for k := w; k < len(objects); k += workers {
				o := objects[k]
				ns[o.N()] = struct{}{}
				a2d[k] = a2dEntry{obj: o, regions: object.NewRegions(o, hm.Get(o.N()))}
			}
			seen[w] = ns
		}(w)
	}
	wg.Wait()
	union := map[int]struct{}{}
	for _, ns := range seen {
		for n := range ns {
			union[n] = struct{}{}
		}
	}
	return a2d, len(union)
}

// computePrunes runs Algorithm 2's scan phase once per object, records
// the classification, and validates every remnant pair with the
// early-stopping scan so warm solves replay the verdicts. The R-tree
// is read-only under search, so workers share it without locking.
func computePrunes(p *Problem, tree *rtree.Tree, a2d []a2dEntry, workers int) ([]objPrune, error) {
	prunes := make([]objPrune, len(a2d))
	scan := func(k int) {
		var pr objPrune
		tree.SearchRect(a2d[k].regions.NIBBox(), func(it rtree.Item) bool {
			switch a2d[k].regions.Classify(it.Point) {
			case object.Influenced:
				pr.ia = append(pr.ia, int32(it.ID))
			case object.NeedsValidation:
				pr.vs = append(pr.vs, int32(it.ID))
			default:
				pr.arcs++
			}
			return true
		})
		if len(pr.vs) > 0 {
			pr.out = make([]valOutcome, len(pr.vs))
			positions := a2d[k].obj.Positions
			for i, c := range pr.vs {
				var ls Stats
				inf := influencedEarlyStop(p.PF, p.Tau, p.Candidates[c], positions, &ls)
				pr.out[i] = valOutcome{probes: int32(ls.PositionProbes), inf: inf}
			}
		}
		prunes[k] = pr
	}
	if workers <= 1 || len(a2d) < workers {
		cc := canceller{ctx: p.Ctx}
		for k := range a2d {
			if err := cc.tick(); err != nil {
				return nil, err
			}
			scan(k)
		}
		return prunes, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc := canceller{ctx: p.Ctx}
			for k := w; k < len(a2d); k += workers {
				if errs[w] = cc.tick(); errs[w] != nil {
					return
				}
				scan(k)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return prunes, nil
}

// matches reports whether the plan was built for exactly this
// problem's inputs. Object and candidate slices are compared by
// identity (length plus backing array), which is what the snapshot
// model guarantees; values are not rescanned.
func (pl *Plan) matches(p *Problem) bool {
	return sameSlice(pl.objects, p.Objects) &&
		sameSlice(pl.cands, p.Candidates) &&
		pl.tau == p.Tau &&
		pl.fanout == p.fanout() &&
		pfEqual(pl.pf, p.PF)
}

// sameSlice reports slice identity: same length over the same backing
// array.
func sameSlice[T any](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// pfEqual compares two probability functions. The stock probfn
// families are comparable value structs, so == decides exactly; a
// custom non-comparable implementation can only be matched by dynamic
// type and is trusted beyond that (documented on Problem.Plan).
func pfEqual(a, b probfn.Func) bool {
	ta, tb := reflect.TypeOf(a), reflect.TypeOf(b)
	if ta != tb {
		return false
	}
	if ta == nil || !ta.Comparable() {
		return ta == tb
	}
	return a == b
}

// solveState resolves the per-solve structures: the prebuilt plan when
// one is attached (Validate has already checked it matches), otherwise
// a fresh Algorithm 1 + R-tree build traced under the usual phase
// spans. prunes is nil exactly when the prune phase must scan live.
func (p *Problem) solveState(st *Stats) (a2d []a2dEntry, tree *rtree.Tree, prunes []objPrune) {
	if pl := p.Plan; pl != nil {
		st.DistinctN = pl.distinctN
		return pl.a2d, pl.tree, pl.prunes
	}
	buildSp := p.Obs.Child("build-a2d")
	a2d = buildA2D(p, st)
	buildSp.End()
	treeSp := p.Obs.Child("build-rtree")
	tree = p.candidateTree()
	treeSp.End()
	return a2d, tree, nil
}

// scanObject dispatches one object's prune phase: a replay of the
// memoized classification when the plan carries one (handing each
// remnant pair its memoized validation outcome), a live R-tree scan
// otherwise (out is nil — the pair must be validated live). The return
// values and callback order match pruneObject, so counters derived
// from them are identical either way. nodes, when non-nil, accumulates
// R-tree node visits on the live path (replays do no tree work and
// leave it untouched).
func scanObject(tree *rtree.Tree, prunes []objPrune, k int, e a2dEntry, nodes *int64, influenced func(cand int), validate func(cand int, out *valOutcome)) (touched, iaHits, arcs int64) {
	if prunes != nil {
		pr := prunes[k]
		for _, c := range pr.ia {
			influenced(int(c))
		}
		for i, c := range pr.vs {
			validate(int(c), &pr.out[i])
		}
		return int64(len(pr.ia) + len(pr.vs)), int64(len(pr.ia)), int64(pr.arcs)
	}
	return pruneObject(tree, e, nodes, influenced, func(c int) { validate(c, nil) })
}
