package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pinocchio/internal/geo"
	"pinocchio/internal/object"
	"pinocchio/internal/probfn"
)

// randomProblem builds a PRIME-LS instance with clustered, heavily
// overlapping activity regions, mimicking the structure of check-in
// data.
func randomProblem(rng *rand.Rand, nObjects, nCands int, tau float64) *Problem {
	objects := make([]*object.Object, nObjects)
	for k := 0; k < nObjects; k++ {
		n := 1 + rng.Intn(30)
		pts := make([]geo.Point, n)
		// 1-3 anchors spread over a 40x30 km frame; positions cluster
		// around anchors so activity regions overlap heavily.
		nAnchors := 1 + rng.Intn(3)
		anchors := make([]geo.Point, nAnchors)
		for a := range anchors {
			anchors[a] = geo.Point{X: rng.Float64() * 40, Y: rng.Float64() * 30}
		}
		for i := range pts {
			a := anchors[rng.Intn(nAnchors)]
			pts[i] = geo.Point{X: a.X + rng.NormFloat64()*2, Y: a.Y + rng.NormFloat64()*2}
		}
		objects[k] = object.MustNew(k, pts)
	}
	cands := make([]geo.Point, nCands)
	for j := range cands {
		cands[j] = geo.Point{X: rng.Float64() * 40, Y: rng.Float64() * 30}
	}
	return &Problem{
		Objects:    objects,
		Candidates: cands,
		PF:         probfn.DefaultPowerLaw(),
		Tau:        tau,
	}
}

func TestValidate(t *testing.T) {
	valid := randomProblem(rand.New(rand.NewSource(1)), 3, 3, 0.7)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Problem)
		want   error
	}{
		{"no objects", func(p *Problem) { p.Objects = nil }, ErrNoObjects},
		{"no candidates", func(p *Problem) { p.Candidates = nil }, ErrNoCandidates},
		{"nil PF", func(p *Problem) { p.PF = nil }, ErrNilPF},
		{"tau zero", func(p *Problem) { p.Tau = 0 }, ErrBadTau},
		{"tau one", func(p *Problem) { p.Tau = 1 }, ErrBadTau},
		{"tau negative", func(p *Problem) { p.Tau = -0.5 }, ErrBadTau},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			p := randomProblem(rand.New(rand.NewSource(1)), 3, 3, 0.7)
			tt.mutate(p)
			if err := p.Validate(); !errors.Is(err, tt.want) {
				t.Errorf("Validate = %v, want %v", err, tt.want)
			}
			// Every solver surfaces the same validation error.
			for _, alg := range Algorithms() {
				if _, err := Solve(alg, p); !errors.Is(err, tt.want) {
					t.Errorf("%v: err = %v, want %v", alg, err, tt.want)
				}
			}
		})
	}
}

func TestPaperExample1Arithmetic(t *testing.T) {
	// Example 1 of §3.2: with the stated position probabilities,
	// Pr_c1(O1) = 0.73 and Pr_c1(O2) = 0.86, so with τ = 0.8 c1
	// influences only O2 even though O1 holds the nearest position.
	pr1 := []float64{0.5, 0.1, 0.2, 0.15, 0.12}
	pr2 := []float64{0.25, 0.35, 0.33, 0.3, 0.38}
	cum := func(ps []float64) float64 {
		v := 1.0
		for _, p := range ps {
			v *= 1 - p
		}
		return 1 - v
	}
	if got := cum(pr1); math.Abs(got-0.73) > 0.01 {
		t.Errorf("Pr_c1(O1) = %v, paper says 0.73", got)
	}
	if got := cum(pr2); math.Abs(got-0.86) > 0.01 {
		t.Errorf("Pr_c1(O2) = %v, paper says 0.86", got)
	}
	tau := 0.8
	if cum(pr1) >= tau {
		t.Error("c1 should not influence O1 at τ=0.8")
	}
	if cum(pr2) < tau {
		t.Error("c1 should influence O2 at τ=0.8")
	}
}

func TestSinglePair(t *testing.T) {
	// One object, one candidate: influenced iff Pr >= tau.
	pf := probfn.DefaultPowerLaw()
	o := object.MustNew(0, []geo.Point{{X: 0, Y: 0}})
	near := &Problem{
		Objects:    []*object.Object{o},
		Candidates: []geo.Point{{X: 0.01, Y: 0}},
		PF:         pf, Tau: 0.5,
	}
	for _, alg := range Algorithms() {
		res, err := Solve(alg, near)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.BestInfluence != 1 {
			t.Errorf("%v: near candidate influence = %d, want 1", alg, res.BestInfluence)
		}
	}
	far := &Problem{
		Objects:    []*object.Object{o},
		Candidates: []geo.Point{{X: 500, Y: 0}},
		PF:         pf, Tau: 0.5,
	}
	for _, alg := range Algorithms() {
		res, err := Solve(alg, far)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.BestInfluence != 0 {
			t.Errorf("%v: far candidate influence = %d, want 0", alg, res.BestInfluence)
		}
	}
}

// TestAlgorithmsAgree is the core cross-validation: on random
// instances all four algorithms must report the same maximum
// influence, and the exact algorithms the same influence vector.
func TestAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		tau := [5]float64{0.1, 0.3, 0.5, 0.7, 0.9}[trial%5]
		p := randomProblem(rng, 30+rng.Intn(50), 20+rng.Intn(60), tau)

		na, err := NA(p)
		if err != nil {
			t.Fatal(err)
		}
		pin, err := Pinocchio(p)
		if err != nil {
			t.Fatal(err)
		}
		vo, err := PinocchioVO(p)
		if err != nil {
			t.Fatal(err)
		}
		vos, err := PinocchioVOStar(p)
		if err != nil {
			t.Fatal(err)
		}

		for j := range na.Influences {
			if na.Influences[j] != pin.Influences[j] {
				t.Fatalf("trial %d τ=%v: influence[%d]: NA %d vs PIN %d",
					trial, tau, j, na.Influences[j], pin.Influences[j])
			}
		}
		if na.BestInfluence != pin.BestInfluence ||
			na.BestInfluence != vo.BestInfluence ||
			na.BestInfluence != vos.BestInfluence {
			t.Fatalf("trial %d τ=%v: best influence NA=%d PIN=%d VO=%d VO*=%d",
				trial, tau, na.BestInfluence, pin.BestInfluence,
				vo.BestInfluence, vos.BestInfluence)
		}
		// The VO winners must actually attain the maximum.
		if na.Influences[vo.BestIndex] != na.BestInfluence {
			t.Fatalf("trial %d: VO winner %d has influence %d, max is %d",
				trial, vo.BestIndex, na.Influences[vo.BestIndex], na.BestInfluence)
		}
		if na.Influences[vos.BestIndex] != na.BestInfluence {
			t.Fatalf("trial %d: VO* winner %d has influence %d, max is %d",
				trial, vos.BestIndex, na.Influences[vos.BestIndex], na.BestInfluence)
		}
		if na.BestIndex != pin.BestIndex {
			t.Fatalf("trial %d: deterministic tie-break differs: NA %d vs PIN %d",
				trial, na.BestIndex, pin.BestIndex)
		}
	}
}

func TestPruningSavesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := randomProblem(rng, 200, 150, 0.7)
	na, _ := NA(p)
	pin, _ := Pinocchio(p)
	vo, _ := PinocchioVO(p)

	if pin.Stats.PositionProbes >= na.Stats.PositionProbes {
		t.Errorf("PIN probes %d not fewer than NA %d",
			pin.Stats.PositionProbes, na.Stats.PositionProbes)
	}
	if vo.Stats.PositionProbes >= pin.Stats.PositionProbes {
		t.Errorf("VO probes %d not fewer than PIN %d",
			vo.Stats.PositionProbes, pin.Stats.PositionProbes)
	}
	if ratio := pin.Stats.PruneRatio(); ratio < 0.3 {
		t.Errorf("prune ratio %v suspiciously low", ratio)
	}
	// Accounting identity: every pair is IA-pruned, NIB-pruned, or
	// validated (for PIN, which validates all remnants).
	got := pin.Stats.PrunedByIA + pin.Stats.PrunedByNIB + pin.Stats.Validated
	if got != pin.Stats.PairsTotal {
		t.Errorf("pair accounting: %d + %d + %d = %d, want %d",
			pin.Stats.PrunedByIA, pin.Stats.PrunedByNIB, pin.Stats.Validated,
			got, pin.Stats.PairsTotal)
	}
	// For VO, skipped pairs complete the identity.
	gotVO := vo.Stats.PrunedByIA + vo.Stats.PrunedByNIB + vo.Stats.Validated + vo.Stats.SkippedByBounds
	if gotVO != vo.Stats.PairsTotal {
		t.Errorf("VO pair accounting: %d, want %d", gotVO, vo.Stats.PairsTotal)
	}
}

func TestStatsString(t *testing.T) {
	var s Stats
	if s.String() == "" {
		t.Error("Stats.String should be non-empty")
	}
	if s.PruneRatio() != 0 {
		t.Error("zero stats should have zero prune ratio")
	}
}

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		AlgNA: "NA", AlgPinocchio: "PIN", AlgPinocchioVO: "PIN-VO",
		AlgPinocchioVOStar: "PIN-VO*", Algorithm(42): "unknown",
	}
	for alg, s := range want {
		if alg.String() != s {
			t.Errorf("%d.String() = %q, want %q", alg, alg.String(), s)
		}
	}
	if _, err := Solve(Algorithm(42), randomProblem(rand.New(rand.NewSource(1)), 2, 2, 0.5)); err == nil {
		t.Error("unknown algorithm should error")
	} else if err.Error() == "" {
		t.Error("error should have a message")
	}
}

func TestRankAllSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	p := randomProblem(rng, 60, 40, 0.5)
	ranked, err := RankAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != len(p.Candidates) {
		t.Fatalf("ranked %d of %d candidates", len(ranked), len(p.Candidates))
	}
	seen := make(map[int]bool)
	for i, r := range ranked {
		if seen[r.Index] {
			t.Fatalf("candidate %d ranked twice", r.Index)
		}
		seen[r.Index] = true
		if i > 0 {
			prev := ranked[i-1]
			if r.Influence > prev.Influence {
				t.Fatalf("not sorted at %d", i)
			}
			if r.Influence == prev.Influence && r.Index < prev.Index {
				t.Fatalf("tie-break not by index at %d", i)
			}
		}
	}
	// Cross-check against NA.
	na, _ := NA(p)
	for _, r := range ranked {
		if na.Influences[r.Index] != r.Influence {
			t.Fatalf("ranked influence %d for cand %d, NA says %d",
				r.Influence, r.Index, na.Influences[r.Index])
		}
	}
}

func TestTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	p := randomProblem(rng, 50, 30, 0.5)
	top, err := TopK(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("TopK returned %d", len(top))
	}
	na, _ := NA(p)
	// Influence of each returned candidate must be >= every excluded one.
	minTop := na.Influences[top[len(top)-1]]
	included := make(map[int]bool)
	for _, c := range top {
		included[c] = true
	}
	for j, inf := range na.Influences {
		if !included[j] && inf > minTop {
			t.Fatalf("excluded candidate %d has influence %d > weakest included %d",
				j, inf, minTop)
		}
	}
	// Degenerate k values.
	if all, _ := TopK(p, 1000); len(all) != len(p.Candidates) {
		t.Errorf("k beyond m should return all, got %d", len(all))
	}
	if none, _ := TopK(p, -1); len(none) != 0 {
		t.Errorf("negative k should return none, got %d", len(none))
	}
}

func TestCumulativeProbMatchesDefinition(t *testing.T) {
	pf := probfn.DefaultPowerLaw()
	c := geo.Point{X: 0, Y: 0}
	pts := []geo.Point{{X: 1, Y: 0}, {X: 0, Y: 2}, {X: 3, Y: 4}}
	want := 1.0
	for _, p := range pts {
		want *= 1 - pf.Prob(c.Dist(p))
	}
	want = 1 - want
	var probes int64
	if got := CumulativeProb(pf, c, pts, &probes); math.Abs(got-want) > 1e-15 {
		t.Errorf("CumulativeProb = %v, want %v", got, want)
	}
	if probes != 3 {
		t.Errorf("probes = %d, want 3", probes)
	}
	if got := CumulativeProb(pf, c, nil, nil); got != 0 {
		t.Errorf("empty positions should give probability 0, got %v", got)
	}
}

// TestEarlyStopAgreesWithFull: Strategy 2 must decide exactly like the
// full computation for every pair.
func TestEarlyStopAgreesWithFull(t *testing.T) {
	pf := probfn.DefaultPowerLaw()
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 2000; trial++ {
		tau := 0.05 + rng.Float64()*0.9
		n := 1 + rng.Intn(40)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
		}
		c := geo.Point{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
		var s1, s2 Stats
		full := influencedFull(pf, tau, c, pts, &s1)
		early := influencedEarlyStop(pf, tau, c, pts, &s2)
		if full != early {
			t.Fatalf("τ=%v n=%d: full=%v early=%v", tau, n, full, early)
		}
		if s2.PositionProbes > s1.PositionProbes {
			t.Fatalf("early stop probed more (%d) than full (%d)", s2.PositionProbes, s1.PositionProbes)
		}
	}
}

func TestEarlyStopSavesProbes(t *testing.T) {
	// All positions essentially at the candidate: the first probe
	// should decide for small tau.
	pf := probfn.DefaultPowerLaw()
	pts := make([]geo.Point, 100)
	var st Stats
	if !influencedEarlyStop(pf, 0.5, geo.Point{X: 0, Y: 0}, pts, &st) {
		t.Fatal("should be influenced")
	}
	if st.PositionProbes != 1 {
		t.Errorf("probes = %d, want 1", st.PositionProbes)
	}
	if st.EarlyStops != 1 {
		t.Errorf("earlyStops = %d, want 1", st.EarlyStops)
	}
}

func TestDistinctNRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	p := randomProblem(rng, 40, 10, 0.7)
	distinct := make(map[int]bool)
	for _, o := range p.Objects {
		distinct[o.N()] = true
	}
	res, _ := Pinocchio(p)
	if res.Stats.DistinctN != len(distinct) {
		t.Errorf("DistinctN = %d, want %d", res.Stats.DistinctN, len(distinct))
	}
}

// TestHighOverlapStress mirrors the paper's observation that activity
// regions overlap heavily: all objects share the same region, and the
// algorithms must still agree.
func TestHighOverlapStress(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	objects := make([]*object.Object, 80)
	for k := range objects {
		n := 5 + rng.Intn(20)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		objects[k] = object.MustNew(k, pts)
	}
	cands := make([]geo.Point, 60)
	for j := range cands {
		cands[j] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	p := &Problem{Objects: objects, Candidates: cands, PF: probfn.DefaultPowerLaw(), Tau: 0.7}
	na, _ := NA(p)
	vo, _ := PinocchioVO(p)
	if na.BestInfluence != vo.BestInfluence {
		t.Fatalf("NA %d vs VO %d under total overlap", na.BestInfluence, vo.BestInfluence)
	}
}

// TestExtremeTaus exercises thresholds near the ends of (0,1).
func TestExtremeTaus(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, tau := range []float64{0.001, 0.999} {
		p := randomProblem(rng, 40, 30, tau)
		na, err := NA(p)
		if err != nil {
			t.Fatal(err)
		}
		vo, err := PinocchioVO(p)
		if err != nil {
			t.Fatal(err)
		}
		if na.BestInfluence != vo.BestInfluence {
			t.Fatalf("τ=%v: NA %d vs VO %d", tau, na.BestInfluence, vo.BestInfluence)
		}
	}
}

func TestCandidatesCoincidingWithPositions(t *testing.T) {
	// Candidates exactly on object positions (distance zero) — the
	// strongest-influence corner case.
	o := object.MustNew(0, []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}})
	p := &Problem{
		Objects:    []*object.Object{o},
		Candidates: []geo.Point{{X: 1, Y: 1}},
		PF:         probfn.DefaultPowerLaw(),
		Tau:        0.7,
	}
	for _, alg := range Algorithms() {
		res, err := Solve(alg, p)
		if err != nil {
			t.Fatal(err)
		}
		// PF(0) = 0.9 ≥ 0.7 on the first position alone.
		if res.BestInfluence != 1 {
			t.Errorf("%v: influence = %d, want 1", alg, res.BestInfluence)
		}
	}
}
