package core

import (
	"math/rand"
	"testing"
)

// TestTopTMatchesRankAll: the certified top-t must equal the exact
// ranking's prefix for every t.
func TestTopTMatchesRankAll(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 40+rng.Intn(60), 30+rng.Intn(40), 0.3+0.2*float64(trial%3))
		exact, err := RankAll(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, tt := range []int{1, 2, 5, 10, len(p.Candidates)} {
			got, _, err := PinocchioVOTopT(p, tt)
			if err != nil {
				t.Fatal(err)
			}
			want := tt
			if want > len(exact) {
				want = len(exact)
			}
			if len(got) != want {
				t.Fatalf("trial %d t=%d: got %d candidates, want %d", trial, tt, len(got), want)
			}
			for i := 0; i < want; i++ {
				if got[i] != exact[i] {
					t.Fatalf("trial %d t=%d rank %d: got %+v, want %+v",
						trial, tt, i, got[i], exact[i])
				}
			}
		}
	}
}

func TestTopTSkipsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	p := randomProblem(rng, 200, 150, 0.7)
	_, st1, err := PinocchioVOTopT(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, stAll, err := PinocchioVOTopT(p, len(p.Candidates))
	if err != nil {
		t.Fatal(err)
	}
	if st1.Validated >= stAll.Validated {
		t.Errorf("top-1 validated %d, not fewer than top-all %d",
			st1.Validated, stAll.Validated)
	}
	// Full-width top-t certifies everything, so nothing can be skipped
	// by bounds.
	if stAll.SkippedByBounds != 0 {
		t.Errorf("top-all skipped %d pairs", stAll.SkippedByBounds)
	}
	// Pair accounting for the top-1 run.
	got := st1.PrunedByIA + st1.PrunedByNIB + st1.Validated + st1.SkippedByBounds
	if got != st1.PairsTotal {
		t.Errorf("pair accounting: %d, want %d", got, st1.PairsTotal)
	}
}

func TestTopTArgValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(217))
	p := randomProblem(rng, 5, 5, 0.5)
	if _, _, err := PinocchioVOTopT(p, 0); err == nil {
		t.Error("t=0 should error")
	}
	if _, _, err := PinocchioVOTopT(p, -1); err == nil {
		t.Error("negative t should error")
	}
	if _, _, err := PinocchioVOTopT(&Problem{}, 1); err == nil {
		t.Error("invalid problem should error")
	}
	// t beyond m clamps.
	got, _, err := PinocchioVOTopT(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("clamped t returned %d", len(got))
	}
}

func TestTopTAgreesWithVOBest(t *testing.T) {
	rng := rand.New(rand.NewSource(219))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 50, 40, 0.7)
		vo, err := PinocchioVO(p)
		if err != nil {
			t.Fatal(err)
		}
		top, _, err := PinocchioVOTopT(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if top[0].Influence != vo.BestInfluence {
			t.Fatalf("trial %d: top-1 influence %d vs VO %d",
				trial, top[0].Influence, vo.BestInfluence)
		}
	}
}
