package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pinocchio/internal/geo"
	"pinocchio/internal/object"
	"pinocchio/internal/probfn"
)

// pairCase is a random object/candidate pair for pairwise invariants.
type pairCase struct {
	tau       float64
	candidate geo.Point
	positions []geo.Point
}

// Generate implements quick.Generator.
func (pairCase) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(size*2+6)
	pc := pairCase{
		tau:       0.02 + rng.Float64()*0.96,
		candidate: geo.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8},
		positions: make([]geo.Point, n),
	}
	for i := range pc.positions {
		pc.positions[i] = geo.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
	}
	return reflect.ValueOf(pc)
}

// TestQuickCumulativeMonotoneInPositions: adding a position never
// decreases the cumulative influence probability — the property the
// dynamic engine's AddPosition fast path relies on.
func TestQuickCumulativeMonotoneInPositions(t *testing.T) {
	pf := probfn.DefaultPowerLaw()
	f := func(pc pairCase) bool {
		full := CumulativeProb(pf, pc.candidate, pc.positions, nil)
		prefix := CumulativeProb(pf, pc.candidate, pc.positions[:len(pc.positions)-1], nil)
		return full >= prefix-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickCumulativeBounds: Pr_c(O) is a probability and at least the
// strongest single position.
func TestQuickCumulativeBounds(t *testing.T) {
	pf := probfn.DefaultPowerLaw()
	f := func(pc pairCase) bool {
		pr := CumulativeProb(pf, pc.candidate, pc.positions, nil)
		if pr < 0 || pr > 1 {
			return false
		}
		bestSingle := 0.0
		for _, p := range pc.positions {
			if v := pf.Prob(pc.candidate.Dist(p)); v > bestSingle {
				bestSingle = v
			}
		}
		return pr >= bestSingle-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickInfluenceMonotoneInTau: raising τ can only shrink the
// influenced relation for a fixed pair.
func TestQuickInfluenceMonotoneInTau(t *testing.T) {
	pf := probfn.DefaultPowerLaw()
	f := func(pc pairCase) bool {
		var st Stats
		low := influencedEarlyStop(pf, pc.tau*0.5, pc.candidate, pc.positions, &st)
		high := influencedEarlyStop(pf, pc.tau, pc.candidate, pc.positions, &st)
		// high ⇒ low.
		return !high || low
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickClassifyConsistentWithDecision: the pruning classification
// never contradicts the exact decision for random pairs (the quick
// version of the region soundness test).
func TestQuickClassifyConsistentWithDecision(t *testing.T) {
	pf := probfn.DefaultPowerLaw()
	rt := map[float64]*object.RadiusTable{}
	f := func(pc pairCase) bool {
		table, ok := rt[pc.tau]
		if !ok {
			table = object.NewRadiusTable(pf, pc.tau)
			rt[pc.tau] = table
		}
		o := object.MustNew(0, pc.positions)
		regions := object.NewRegions(o, table.Get(o.N()))
		var st Stats
		inf := influencedFull(pf, pc.tau, pc.candidate, pc.positions, &st)
		switch regions.Classify(pc.candidate) {
		case object.Influenced:
			return inf
		case object.NotInfluenced:
			return !inf
		default:
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

// smallProblemCase is a whole random instance for solver agreement.
type smallProblemCase struct {
	seed int64
	tau  float64
}

// Generate implements quick.Generator.
func (smallProblemCase) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(smallProblemCase{
		seed: rng.Int63(),
		tau:  0.05 + rng.Float64()*0.9,
	})
}

// TestQuickSolversAgree: NA and PINOCCHIO-VO agree on arbitrary small
// instances — the quick version of TestAlgorithmsAgree.
func TestQuickSolversAgree(t *testing.T) {
	f := func(c smallProblemCase) bool {
		rng := rand.New(rand.NewSource(c.seed))
		p := randomProblem(rng, 5+rng.Intn(25), 4+rng.Intn(20), c.tau)
		na, err := NA(p)
		if err != nil {
			return false
		}
		vo, err := PinocchioVO(p)
		if err != nil {
			return false
		}
		return na.BestInfluence == vo.BestInfluence &&
			na.Influences[vo.BestIndex] == na.BestInfluence
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
