package core

import (
	"pinocchio/internal/geo"
	"pinocchio/internal/object"
	"pinocchio/internal/rtree"
)

// PinocchioObjectTree is the design alternative §4.3 argues against:
// instead of the flat moving-object array A_2D, it indexes object
// activity regions (their NIB boxes) in an R-tree and drives the
// pruning from the candidate side — for each candidate, a range query
// retrieves the objects whose NIB box contains it.
//
// The paper's claim: because activity regions overlap heavily, the
// MBRs of intermediate nodes overlap too, group-wise pruning cannot
// cut subtrees, and "nearly every leaf still needs to be explored",
// so the hierarchy only adds construction and traversal overhead.
// This implementation exists to measure that claim
// (BenchmarkDesignObjectTree); results are identical to Pinocchio.
func PinocchioObjectTree(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := len(p.Candidates)
	res := &Result{Influences: make([]int, m)}
	st := &res.Stats
	st.PairsTotal = int64(len(p.Objects)) * int64(m)

	a2d := buildA2D(p, st)

	// Index the object NIB boxes. The R-tree stores points, so we
	// store each box's center and keep the boxes side-by-side; node
	// bounds are maintained with an explicit rect tree instead — to
	// stay faithful to "index the MBRs", we build a dedicated
	// rectangle tree below.
	tree := newRectTree(rtree.DefaultMaxEntries)
	boxes := make([]geo.Rect, len(a2d))
	for k, e := range a2d {
		boxes[k] = e.regions.NIBBox()
		tree.insert(boxes[k], k)
	}

	for cand, pt := range p.Candidates {
		tree.stabbing(pt, func(k int) {
			e := a2d[k]
			switch e.regions.Classify(pt) {
			case object.Influenced:
				st.PrunedByIA++
				res.Influences[cand]++
			case object.NeedsValidation:
				st.Validated++
				if influencedEarlyStop(p.PF, p.Tau, pt, e.obj.Positions, st) {
					res.Influences[cand]++
				}
			default:
				// Inside the NIB box but outside the rounded NIB:
				// pruned like the never-retrieved objects, counted in
				// the remainder below.
			}
		})
	}
	// Every pair not settled by IA or validated was NIB-pruned,
	// whether its box was stabbed or never retrieved.
	st.PrunedByNIB = st.PairsTotal - st.PrunedByIA - st.Validated
	res.BestIndex, res.BestInfluence = argmax(res.Influences)
	return res, nil
}

// rectTree is a minimal R-tree over rectangles used only by the
// object-side design variant: insert + stabbing (point containment)
// query, with the node-visit counter that quantifies §4.3's overlap
// argument.
type rectTree struct {
	root       *rectNode
	maxEntries int
	minEntries int
	// NodeVisits counts nodes touched by stabbing queries.
	NodeVisits int64
}

type rectEntry struct {
	rect  geo.Rect
	child *rectNode
	id    int
}

type rectNode struct {
	leaf    bool
	entries []rectEntry
}

func newRectTree(maxEntries int) *rectTree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &rectTree{
		root:       &rectNode{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries / 2,
	}
}

func (t *rectTree) insert(r geo.Rect, id int) {
	path := []*rectNode{t.root}
	n := t.root
	for !n.leaf {
		best := -1
		var bestEnl, bestArea float64
		for i := range n.entries {
			enl := n.entries[i].rect.Enlargement(r)
			area := n.entries[i].rect.Area()
			if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n.entries[best].rect = n.entries[best].rect.Union(r)
		n = n.entries[best].child
		path = append(path, n)
	}
	n.entries = append(n.entries, rectEntry{rect: r, id: id})

	for i := len(path) - 1; i >= 0; i-- {
		nd := path[i]
		if len(nd.entries) <= t.maxEntries {
			break
		}
		left, right := t.splitRectNode(nd)
		if i == 0 {
			t.root = &rectNode{
				leaf: false,
				entries: []rectEntry{
					{rect: boundsOf(left), child: left},
					{rect: boundsOf(right), child: right},
				},
			}
			break
		}
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].child == nd {
				parent.entries[j] = rectEntry{rect: boundsOf(left), child: left}
				break
			}
		}
		parent.entries = append(parent.entries, rectEntry{rect: boundsOf(right), child: right})
	}
}

func boundsOf(n *rectNode) geo.Rect {
	r := geo.EmptyRect()
	for i := range n.entries {
		r = r.Union(n.entries[i].rect)
	}
	return r
}

// splitRectNode: linear split (pick the pair with greatest separation
// along the axis with the widest spread) — simpler than quadratic and
// irrelevant to the overlap argument being measured.
func (t *rectTree) splitRectNode(n *rectNode) (left, right *rectNode) {
	entries := n.entries
	// Seeds: extremes along X.
	lo, hi := 0, 0
	for i := range entries {
		if entries[i].rect.Min.X < entries[lo].rect.Min.X {
			lo = i
		}
		if entries[i].rect.Max.X > entries[hi].rect.Max.X {
			hi = i
		}
	}
	if lo == hi {
		hi = (lo + 1) % len(entries)
	}
	left = &rectNode{leaf: n.leaf, entries: []rectEntry{entries[lo]}}
	right = &rectNode{leaf: n.leaf, entries: []rectEntry{entries[hi]}}
	lr, rr := entries[lo].rect, entries[hi].rect
	for i := range entries {
		if i == lo || i == hi {
			continue
		}
		e := entries[i]
		if len(left.entries)+(len(entries)-i) == t.minEntries {
			left.entries = append(left.entries, e)
			lr = lr.Union(e.rect)
			continue
		}
		if len(right.entries)+(len(entries)-i) == t.minEntries {
			right.entries = append(right.entries, e)
			rr = rr.Union(e.rect)
			continue
		}
		if lr.Enlargement(e.rect) <= rr.Enlargement(e.rect) {
			left.entries = append(left.entries, e)
			lr = lr.Union(e.rect)
		} else {
			right.entries = append(right.entries, e)
			rr = rr.Union(e.rect)
		}
	}
	n.entries = left.entries
	n.leaf = left.leaf
	return n, right
}

// stabbing visits the ids of all rectangles containing pt.
func (t *rectTree) stabbing(pt geo.Point, visit func(id int)) {
	var walk func(n *rectNode)
	walk = func(n *rectNode) {
		t.NodeVisits++
		for i := range n.entries {
			e := &n.entries[i]
			if !e.rect.ContainsPoint(pt) {
				continue
			}
			if n.leaf {
				visit(e.id)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
}
