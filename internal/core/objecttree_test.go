package core

import (
	"math/rand"
	"testing"

	"pinocchio/internal/geo"
)

// TestObjectTreeMatchesPinocchio: the rejected design must still be
// correct — only its traversal economics differ.
func TestObjectTreeMatchesPinocchio(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	for trial := 0; trial < 8; trial++ {
		p := randomProblem(rng, 40+rng.Intn(80), 30+rng.Intn(50), 0.3+0.2*float64(trial%3))
		ref, err := Pinocchio(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PinocchioObjectTree(p)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref.Influences {
			if got.Influences[j] != ref.Influences[j] {
				t.Fatalf("trial %d: influence[%d] = %d, want %d",
					trial, j, got.Influences[j], ref.Influences[j])
			}
		}
		if got.BestIndex != ref.BestIndex {
			t.Fatalf("trial %d: best %d, want %d", trial, got.BestIndex, ref.BestIndex)
		}
		// Identical pair economics: the pruning decisions are defined
		// by the same regions, only the retrieval strategy differs.
		if got.Stats.PrunedByIA != ref.Stats.PrunedByIA ||
			got.Stats.Validated != ref.Stats.Validated {
			t.Fatalf("trial %d: pair stats diverge: %v vs %v",
				trial, got.Stats, ref.Stats)
		}
	}
	if _, err := PinocchioObjectTree(&Problem{}); err == nil {
		t.Error("invalid problem should error")
	}
}

// TestObjectTreeOverlapClaim reproduces the §4.3 argument
// quantitatively: on overlap-heavy workloads a stabbing query visits a
// large fraction of the object tree's nodes, i.e. the hierarchy barely
// prunes.
func TestObjectTreeOverlapClaim(t *testing.T) {
	rng := rand.New(rand.NewSource(253))
	// Overlap-heavy: every object roams most of the frame (the ~55%
	// per-dimension coverage the paper measured).
	p := randomProblem(rng, 300, 1, 0.7) // candidates replaced below
	var cands []geo.Point
	for i := 0; i < 50; i++ {
		cands = append(cands, geo.Point{X: rng.Float64() * 40, Y: rng.Float64() * 30})
	}
	p.Candidates = cands

	a2d := buildA2D(p, &Stats{})
	tree := newRectTree(8)
	total := 0
	for k, e := range a2d {
		tree.insert(e.regions.NIBBox(), k)
		total++
	}
	// Count nodes in the tree.
	nodes := 0
	var count func(n *rectNode)
	count = func(n *rectNode) {
		nodes++
		if n.leaf {
			return
		}
		for i := range n.entries {
			count(n.entries[i].child)
		}
	}
	count(tree.root)

	hits := 0
	for _, c := range p.Candidates {
		tree.stabbing(c, func(int) { hits++ })
	}
	visitsPerQuery := float64(tree.NodeVisits) / float64(len(p.Candidates))
	frac := visitsPerQuery / float64(nodes)
	t.Logf("object tree: %d nodes, %.1f visited per query (%.0f%%), %d stabs",
		nodes, visitsPerQuery, frac*100, hits)
	if frac < 0.25 {
		t.Errorf("object tree pruned more than expected on overlap-heavy data: "+
			"%.0f%% of nodes visited — the §4.3 claim would not hold", frac*100)
	}
}
