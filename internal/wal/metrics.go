package wal

import (
	"time"

	"pinocchio/internal/obs"
)

// Metric names for the write-ahead log (catalogue in DESIGN.md §9).
// MetricFsyncSeconds is exported so the serving layer can surface
// WAL-sync latency percentiles on /v1/status.
const (
	mAppends           = "pinocchio_wal_appends_total"
	mBytes             = "pinocchio_wal_bytes_total"
	mFsyncs            = "pinocchio_wal_fsyncs_total"
	MetricFsyncSeconds = "pinocchio_wal_fsync_seconds"
)

// FsyncBuckets resolve fsync latencies from tens of microseconds
// (battery-backed or lying disks) to hundreds of milliseconds
// (contended spinning rust) — well below the query-scale DefBuckets.
var FsyncBuckets = []float64{
	.00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5,
}

// recordAppend folds one framed append into the default registry.
func recordAppend(frameBytes int) {
	if !obs.Enabled() {
		return
	}
	r := obs.Default()
	r.Counter(mAppends, "WAL records appended.", nil).Inc()
	r.Counter(mBytes, "WAL bytes written (framing included).", nil).Add(int64(frameBytes))
}

// recordFsync counts one fsync of a segment file and its latency.
func recordFsync(dur time.Duration) {
	if !obs.Enabled() {
		return
	}
	r := obs.Default()
	r.Counter(mFsyncs, "WAL segment fsyncs.", nil).Inc()
	r.Histogram(MetricFsyncSeconds, "WAL fsync latency in seconds.",
		FsyncBuckets, nil).Observe(dur.Seconds())
}
