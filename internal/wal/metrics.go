package wal

import "pinocchio/internal/obs"

// Metric names for the write-ahead log (catalogue in DESIGN.md §9).
const (
	mAppends = "pinocchio_wal_appends_total"
	mBytes   = "pinocchio_wal_bytes_total"
	mFsyncs  = "pinocchio_wal_fsyncs_total"
)

// recordAppend folds one framed append into the default registry.
func recordAppend(frameBytes int) {
	if !obs.Enabled() {
		return
	}
	r := obs.Default()
	r.Counter(mAppends, "WAL records appended.", nil).Inc()
	r.Counter(mBytes, "WAL bytes written (framing included).", nil).Add(int64(frameBytes))
}

// recordFsync counts one fsync of a segment file.
func recordFsync() {
	if !obs.Enabled() {
		return
	}
	obs.Default().Counter(mFsyncs, "WAL segment fsyncs.", nil).Inc()
}
