// Package wal is a segmented append-only write-ahead log: the
// durability primitive under internal/store. Records are opaque byte
// payloads framed with a length, a CRC32-C and a monotonically
// increasing sequence number; segments rotate at a size threshold and
// are named by the first sequence number they hold, so the set of
// files alone describes the log's range.
//
// Durability is configurable per log: PolicyAlways fsyncs after every
// append (an acknowledged record survives power loss), PolicyGroup
// flushes dirty segments from a background goroutine every
// GroupWindow (bounding loss to one window while amortizing the
// fsync), PolicyOff leaves flushing to the OS (a process crash still
// loses nothing — the data is in the page cache — but power loss may
// truncate acknowledged records).
//
// Readers tolerate a torn tail: a record cut off or corrupted at the
// very end of the last segment marks the end of the log (the writer
// died mid-append) and is truncated on the next Open. The same damage
// anywhere else is mid-log corruption and surfaces as an error — the
// log can no longer prove it is replaying what was acknowledged.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pinocchio/internal/obs"
)

// Policy selects when appended records are fsynced.
type Policy int

const (
	// PolicyAlways fsyncs inside every Append.
	PolicyAlways Policy = iota
	// PolicyGroup fsyncs dirty segments every Options.GroupWindow.
	PolicyGroup
	// PolicyOff never fsyncs (the OS flushes on its own schedule).
	PolicyOff
)

// ParsePolicy maps the flag spellings to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "group":
		return PolicyGroup, nil
	case "off":
		return PolicyOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, group or off)", s)
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyGroup:
		return "group"
	case PolicyOff:
		return "off"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Options parameterize a WAL. The zero value selects the defaults.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB).
	SegmentBytes int64
	// Policy is the fsync policy (default PolicyAlways).
	Policy Policy
	// GroupWindow is the PolicyGroup flush interval (default 5ms).
	GroupWindow time.Duration
	// Traces, when non-nil, retains background traces for segment
	// rotations (every rotation — they are rare and latency-relevant)
	// and for fsyncs at or above SlowSync (slow ones only — per-append
	// fsyncs would flood the store).
	Traces *obs.TraceStore
	// SlowSync is the fsync duration at which a sync is retained as a
	// slow background trace (and a rotation marked Slow). Zero disables
	// fsync tracing; rotations are still traced when Traces is set.
	SlowSync time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.GroupWindow <= 0 {
		o.GroupWindow = 5 * time.Millisecond
	}
	return o
}

// segMagic opens every segment file; a file without it was never a
// segment (or lost its first write to a crash).
const segMagic = "PWALSEG1"

// segName returns the file name of the segment whose first record has
// the given sequence number.
func segName(first uint64) string {
	return fmt.Sprintf("wal-%016x.seg", first)
}

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	var first uint64
	if _, err := fmt.Sscanf(hex, "%016x", &first); err != nil {
		return 0, false
	}
	return first, true
}

// segment is one log file and the sequence number of its first record.
type segment struct {
	first uint64
	path  string
}

// listSegments returns the directory's segments ordered by first
// sequence number. Non-segment files are ignored.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segment{first: first, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// syncDir fsyncs a directory so file creations/renames/removals in it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WAL is an open log positioned for appending. All methods are safe
// for concurrent use, though appends serialize on an internal mutex —
// the sequence number is the commit order.
type WAL struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File // current (last) segment
	segFirst uint64   // first sequence number of the current segment
	size     int64    // bytes written to the current segment
	lastSeq  uint64   // last appended (or recovered) sequence number
	dirty    bool     // unsynced bytes in the current segment
	failed   error    // sticky write/sync failure; poisons the log
	closed   bool
	buf      []byte // frame scratch buffer

	stop chan struct{} // group-commit loop shutdown
	done chan struct{}
}

// Open opens (or creates) the log in dir, truncates a torn tail left
// by a crashed writer, and positions for appending after the last
// intact record.
func Open(dir string, opt Options) (*WAL, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opt: opt}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.createSegment(1); err != nil {
			return nil, err
		}
	} else if err := w.openLast(segs[len(segs)-1]); err != nil {
		return nil, err
	}
	if opt.Policy == PolicyGroup {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.groupLoop()
	}
	return w, nil
}

// createSegment starts a fresh segment whose first record will carry
// sequence number first, and makes its creation durable.
func (w *WAL) createSegment(first uint64) error {
	path := filepath.Join(w.dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segFirst = first
	w.size = int64(len(segMagic))
	w.lastSeq = first - 1
	return nil
}

// openLast scans the newest segment, truncates everything after the
// last intact record (the torn tail), and positions the writer there.
// Earlier segments are not verified here; Replay checks them when the
// log is actually read back.
func (w *WAL) openLast(sg segment) error {
	data, err := os.ReadFile(sg.path)
	if err != nil {
		return err
	}
	if len(data) < len(segMagic) {
		// The creating writer died before the magic hit the disk: the
		// segment is empty by definition. Rewrite it in place.
		if err := os.Remove(sg.path); err != nil {
			return err
		}
		return w.createSegment(sg.first)
	}
	if string(data[:len(segMagic)]) != segMagic {
		return fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, sg.path)
	}
	off := len(segMagic)
	seq := sg.first - 1
	for off < len(data) {
		s, _, n, err := parseFrame(data[off:])
		if err != nil || s != seq+1 {
			break // torn tail: truncate here
		}
		seq = s
		off += n
	}
	f, err := os.OpenFile(sg.path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if int64(off) < int64(len(data)) {
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(int64(off), 0); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segFirst = sg.first
	w.size = int64(off)
	w.lastSeq = seq
	return nil
}

// Append frames payload, writes it to the current segment and applies
// the fsync policy. It returns the record's sequence number. After a
// write or sync failure the log is poisoned: every later Append
// returns the same error, because the file position can no longer be
// trusted.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("%w (%d bytes)", ErrTooLarge, len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: appending to closed log")
	}
	if w.failed != nil {
		return 0, w.failed
	}
	seq := w.lastSeq + 1
	w.buf = appendFrame(w.buf[:0], seq, payload)
	if _, err := w.f.Write(w.buf); err != nil {
		w.failed = fmt.Errorf("wal: poisoned by failed write: %w", err)
		return 0, w.failed
	}
	w.size += int64(len(w.buf))
	w.lastSeq = seq
	w.dirty = true
	if w.opt.Policy == PolicyAlways {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	}
	recordAppend(len(w.buf))
	if w.size >= w.opt.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// syncLocked fsyncs the current segment; w.mu must be held. Syncs at
// or above Options.SlowSync are retained as background traces — the
// only per-append path that can touch the trace store, and only when
// the disk actually misbehaved.
func (w *WAL) syncLocked() error {
	if w.failed != nil {
		return w.failed
	}
	if !w.dirty {
		return nil
	}
	start := time.Now()
	err := w.f.Sync()
	dur := time.Since(start)
	if err != nil {
		w.failed = fmt.Errorf("wal: poisoned by failed sync: %w", err)
		err = w.failed
	} else {
		w.dirty = false
		recordFsync(dur)
	}
	if w.opt.Traces != nil && w.opt.SlowSync > 0 && (dur >= w.opt.SlowSync || err != nil) {
		root := obs.NewSpan("fsync")
		root.SetAttr("segment_first", w.segFirst)
		root.SetAttr("segment_bytes", w.size)
		root.SetAttr("policy", w.opt.Policy.String())
		root.Accumulate(dur)
		root.End()
		w.opt.Traces.AddBackground("wal-fsync", start, root, err, w.opt.SlowSync)
	}
	return err
}

// rotateLocked seals the current segment and starts the next one;
// w.mu must be held. Every rotation is retained as a background trace
// when the log carries a trace store — rotations are rare, hold the
// append lock, and their seal-sync is a classic tail-latency source.
func (w *WAL) rotateLocked() error {
	if w.opt.Traces == nil {
		return w.rotateStepsLocked(nil)
	}
	start := time.Now()
	root := obs.NewSpan("wal-rotate")
	root.SetAttr("sealed_first", w.segFirst)
	root.SetAttr("sealed_bytes", w.size)
	err := w.rotateStepsLocked(root)
	if err == nil {
		root.SetAttr("next_first", w.segFirst)
	}
	w.opt.Traces.AddBackground("wal-rotate", start, root, err, w.opt.SlowSync)
	return err
}

// rotateStepsLocked is rotateLocked's body: seal the current segment
// with a sync (regardless of policy — a sealed segment should never
// lose data to a later power cut), close it, start the next one. root
// may be nil (untraced rotation).
func (w *WAL) rotateStepsLocked(root *obs.Span) error {
	seal := root.Child("seal-sync")
	err := w.syncLocked()
	seal.End()
	if err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		w.failed = fmt.Errorf("wal: poisoned by failed close: %w", err)
		return w.failed
	}
	cs := root.Child("create-segment")
	err = w.createSegment(w.lastSeq + 1)
	cs.End()
	return err
}

// groupLoop is the PolicyGroup background flusher.
func (w *WAL) groupLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opt.GroupWindow)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed {
				_ = w.syncLocked() // sticky in w.failed; next Append reports it
			}
			w.mu.Unlock()
		}
	}
}

// Sync flushes unsynced appends to disk regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

// LastSeq returns the sequence number of the last appended record, 0
// when the log is empty.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// SizeBytes returns the on-disk size of all segments.
func (w *WAL) SizeBytes() (int64, error) {
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, sg := range segs {
		if info, err := os.Stat(sg.path); err == nil {
			total += info.Size()
		}
	}
	return total, nil
}

// CompactBelow removes segments whose records are all ≤ seq — they
// are covered by a checkpoint and will never be replayed. The current
// segment is always kept.
func (w *WAL) CompactBelow(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	removed := false
	for i := 0; i+1 < len(segs); i++ {
		// segs[i] spans [first, segs[i+1].first); removable when its
		// last record segs[i+1].first-1 is ≤ seq.
		if segs[i+1].first > seq+1 {
			break
		}
		if err := os.Remove(segs[i].path); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return syncDir(w.dir)
	}
	return nil
}

// Close flushes and closes the log. The WAL must not be used after.
func (w *WAL) Close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
		w.stop = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}
