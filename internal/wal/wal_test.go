package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays the whole log into a slice of payload copies.
func collect(t *testing.T, dir string, after uint64) ([]string, ReplayStats) {
	t.Helper()
	var out []string
	st, err := Replay(dir, after, func(seq uint64, payload []byte) error {
		out = append(out, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", after, err)
	}
	return out, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		seq, err := w.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("seq = %d, want %d", seq, want)
		}
	}
	if got := w.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, st := collect(t, dir, 0)
	if len(recs) != 10 || recs[0] != "rec-0" || recs[9] != "rec-9" {
		t.Fatalf("replayed %d records: %v", len(recs), recs)
	}
	if st.Last != 10 || st.TornBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// The after filter skips the prefix.
	recs, _ = collect(t, dir, 7)
	if len(recs) != 3 || recs[0] != "rec-7" {
		t.Fatalf("after=7 replayed %v", recs)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Append([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("seq after reopen = %d, want 2", seq)
	}
	w.Close()

	recs, _ := collect(t, dir, 0)
	if len(recs) != 2 || recs[1] != "b" {
		t.Fatalf("replayed %v", recs)
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64, Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected ≥3 segments after rotation, got %d", len(segs))
	}
	recs, st := collect(t, dir, 0)
	if len(recs) != n || st.Last != n {
		t.Fatalf("replayed %d records (last %d), want %d", len(recs), st.Last, n)
	}
}

// tornTail appends garbage to the last segment, simulating a writer
// that died mid-append.
func tornTail(t *testing.T, dir string, garbage []byte) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	path := segs[len(segs)-1].path
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestTornTailToleratedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	path := tornTail(t, dir, []byte{0x07, 0x00, 0x00, 0x00, 0xde, 0xad})

	// Read-only replay tolerates the tail.
	recs, st := collect(t, dir, 0)
	if len(recs) != 5 || st.TornBytes != 6 {
		t.Fatalf("replayed %d records, torn %d bytes", len(recs), st.TornBytes)
	}

	// Reopening truncates it and appends continue cleanly.
	before, _ := os.Stat(path)
	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	if seq, err := w.Append([]byte("r5")); err != nil || seq != 6 {
		t.Fatalf("append after truncation: seq %d, err %v", seq, err)
	}
	w.Close()
	recs, st = collect(t, dir, 0)
	if len(recs) != 6 || st.TornBytes != 0 {
		t.Fatalf("after truncation: %d records, torn %d", len(recs), st.TornBytes)
	}
}

func TestTornTailMidRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Cut the final record in half.
	segs, _ := listSegments(dir)
	path := segs[len(segs)-1].path
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-4); err != nil {
		t.Fatal(err)
	}

	recs, st := collect(t, dir, 0)
	if len(recs) != 2 || st.TornBytes == 0 {
		t.Fatalf("replayed %d records, torn %d bytes", len(recs), st.TornBytes)
	}
	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.LastSeq(); got != 2 {
		t.Fatalf("LastSeq after torn mid-record = %d, want 2", got)
	}
	w.Close()
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64, Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, got %d", len(segs))
	}

	// Flip a payload byte in the first (sealed) segment.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+frameHeader] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Replay(dir, 0, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay over mid-log corruption: %v, want ErrCorrupt", err)
	}
}

func TestMissingSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64, Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 0, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay over a gap: %v, want ErrCorrupt", err)
	}
}

func TestCompactBelow(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64, Policy: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore, _ := listSegments(dir)
	if len(segsBefore) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segsBefore))
	}

	// Compact below a checkpoint in the middle of the log: every
	// record after it must still replay.
	const ckpt = 17
	if err := w.CompactBelow(ckpt); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := listSegments(dir)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("compaction removed nothing: %d -> %d segments", len(segsBefore), len(segsAfter))
	}
	recs, st := collect(t, dir, ckpt)
	if len(recs) != n-ckpt || st.Last != n {
		t.Fatalf("after compaction: %d records (last %d), want %d (last %d)",
			len(recs), st.Last, n-ckpt, n)
	}
	// The current segment survives even when fully covered.
	if err := w.CompactBelow(uint64(n)); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) == 0 {
		t.Fatal("compaction removed the current segment")
	}
	w.Close()
}

func TestGroupPolicyFlushesInBackground(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: PolicyGroup, GroupWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("grouped")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.mu.Lock()
		dirty := w.dirty
		w.mu.Unlock()
		if !dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group flusher never synced the append")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 0)
	if len(recs) != 1 || recs[0] != "grouped" {
		t.Fatalf("replayed %v", recs)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := w.Append([]byte("x")); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	st, err := Replay(filepath.Join(t.TempDir(), "nope"), 0, nil)
	if err != nil || st.Last != 0 {
		t.Fatalf("missing dir: %+v, %v", st, err)
	}
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	st, err = Replay(dir, 0, nil)
	if err != nil || st.Last != 0 || st.Records != 0 {
		t.Fatalf("empty log: %+v, %v", st, err)
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize append: %v, want ErrTooLarge", err)
	}
}
