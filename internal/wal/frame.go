package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record framing. Every record is laid out as
//
//	length  uint32  payload length in bytes
//	crc     uint32  CRC32-C over seq ++ payload
//	seq     uint64  monotonic sequence number, starting at 1
//	payload length bytes, opaque to the WAL
//
// all little-endian. The CRC covers the sequence number so a record
// copied to the wrong position (or a stale block exposed by a crashy
// filesystem) fails verification even when its payload is intact.
const (
	frameHeader = 16
	// MaxPayload bounds one record; longer lengths in a frame header
	// are treated as corruption rather than allocated.
	MaxPayload = 8 << 20
)

// Errors reported while reading a log.
var (
	// ErrCorrupt marks a record that fails structural or CRC
	// verification in the interior of the log (a torn tail is not an
	// error; see Replay).
	ErrCorrupt = errors.New("wal: corrupt record")
	// errShort marks a frame cut off by the end of the segment: a torn
	// tail when it is the last data in the log.
	errShort = errors.New("wal: short frame")
	// ErrTooLarge reports an Append payload over MaxPayload.
	ErrTooLarge = errors.New("wal: payload exceeds MaxPayload")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameCRC is the checksum stored in a frame header.
func frameCRC(seq uint64, payload []byte) uint32 {
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seq)
	return crc32.Update(crc32.Update(0, castagnoli, s[:]), castagnoli, payload)
}

// appendFrame appends the framed record to dst and returns the
// extended slice.
func appendFrame(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], frameCRC(seq, payload))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseFrame decodes the first record in b, returning its sequence
// number, payload (aliasing b) and total encoded size. errShort means
// b ends mid-record; ErrCorrupt that the frame is structurally invalid
// or fails its checksum.
func parseFrame(b []byte) (seq uint64, payload []byte, n int, err error) {
	if len(b) < frameHeader {
		return 0, nil, 0, errShort
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length > MaxPayload {
		return 0, nil, 0, ErrCorrupt
	}
	n = frameHeader + int(length)
	if len(b) < n {
		return 0, nil, 0, errShort
	}
	crc := binary.LittleEndian.Uint32(b[4:8])
	seq = binary.LittleEndian.Uint64(b[8:16])
	payload = b[frameHeader:n]
	if frameCRC(seq, payload) != crc {
		return 0, nil, 0, ErrCorrupt
	}
	return seq, payload, n, nil
}
