package wal

import (
	"testing"
	"time"

	"pinocchio/internal/obs"
)

// Rotations are always retained as background traces; fsyncs only at
// or above SlowSync. SlowSync of 1ns makes every sync "slow", so both
// routes must appear after enough appends to rotate.
func TestBackgroundTraces(t *testing.T) {
	ts := obs.NewTraceStore(32)
	w, err := Open(t.TempDir(), Options{
		SegmentBytes: 256,
		Traces:       ts,
		SlowSync:     time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 64)
	for i := 0; i < 10; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	var rotations, fsyncs int
	for _, tr := range ts.List(obs.TraceFilter{Kind: obs.KindBackground}) {
		switch tr.Route {
		case "wal-rotate":
			rotations++
			if tr.Spans == nil {
				t.Fatalf("wal-rotate trace has no span tree")
			}
			names := map[string]bool{}
			for _, c := range tr.Spans.Children {
				names[c.Name] = true
			}
			if !names["seal-sync"] || !names["create-segment"] {
				t.Fatalf("wal-rotate children = %v, want seal-sync and create-segment", names)
			}
		case "wal-fsync":
			fsyncs++
			if !tr.Slow {
				t.Fatalf("wal-fsync trace not marked slow under 1ns threshold")
			}
		}
	}
	if rotations == 0 {
		t.Fatalf("no wal-rotate traces after %d appends over a 256-byte segment cap", 10)
	}
	if fsyncs == 0 {
		t.Fatalf("no wal-fsync traces despite 1ns SlowSync")
	}
}

// Without a trace store the same workload must run clean — the tracing
// hooks are nil-safe and off by default.
func TestBackgroundTracesDisabled(t *testing.T) {
	w, err := Open(t.TempDir(), Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 64)
	for i := 0; i < 10; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
}
