package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrame drives the record framing codec from both directions: an
// encode/decode round trip must be lossless, a decode of arbitrary
// bytes must never panic or over-read, and a single bit flip anywhere
// in a valid frame must never decode back to the original record.
func FuzzFrame(f *testing.F) {
	f.Add(uint64(1), []byte("hello"), -1, uint8(0))
	f.Add(uint64(0), []byte{}, 0, uint8(1))
	f.Add(uint64(1<<63), bytes.Repeat([]byte{0xaa}, 100), 5, uint8(7))
	f.Add(uint64(42), []byte("tail"), 20, uint8(0xff))
	f.Fuzz(func(t *testing.T, seq uint64, payload []byte, flip int, xor uint8) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		frame := appendFrame(nil, seq, payload)

		gotSeq, gotPayload, n, err := parseFrame(frame)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if gotSeq != seq || !bytes.Equal(gotPayload, payload) || n != len(frame) {
			t.Fatalf("round trip mismatch: seq %d->%d, %d payload bytes, n=%d/%d",
				seq, gotSeq, len(gotPayload), n, len(frame))
		}

		// Truncations must report errShort, never succeed or panic.
		for _, cut := range []int{0, 1, frameHeader - 1, frameHeader, len(frame) - 1} {
			if cut < 0 || cut >= len(frame) {
				continue
			}
			if _, _, _, err := parseFrame(frame[:cut]); !errors.Is(err, errShort) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated to %d bytes: err = %v", cut, err)
			}
		}

		// A bit flip anywhere in the frame must not verify as the
		// original record (CRC32-C detects all single-bit errors).
		if xor != 0 && len(frame) > 0 {
			i := flip % len(frame)
			if i < 0 {
				i += len(frame)
			}
			mut := bytes.Clone(frame)
			mut[i] ^= xor
			s, p, _, err := parseFrame(mut)
			if err == nil && s == seq && bytes.Equal(p, payload) {
				t.Fatalf("bit flip at %d went undetected", i)
			}
		}

		// Arbitrary bytes (the payload reinterpreted as a frame) must
		// decode without panicking.
		_, _, _, _ = parseFrame(payload)
	})
}
