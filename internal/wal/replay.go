package wal

import (
	"fmt"
	"os"
)

// ReplayStats summarizes one read of the log.
type ReplayStats struct {
	// Last is the highest sequence number seen, 0 for an empty log.
	Last uint64
	// Records counts the records delivered to the callback (those with
	// sequence numbers > after).
	Records int
	// TornBytes counts bytes discarded at the tail of the last segment
	// (an interrupted final append). They were never acknowledged.
	TornBytes int64
}

// Replay reads the log in dir and calls fn for every intact record
// with sequence number > after, in order. A torn tail — a cut-off or
// corrupt record at the very end of the last segment — ends the replay
// silently (it is reported in ReplayStats.TornBytes); the same damage
// anywhere else, a gap between segments, or a sequence-number jump
// inside a sealed segment is mid-log corruption and returns an error
// wrapping ErrCorrupt. An error from fn aborts the replay.
func Replay(dir string, after uint64, fn func(seq uint64, payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, err
	}
	if len(segs) == 0 {
		return st, nil
	}
	if segs[0].first > after+1 {
		return st, fmt.Errorf("%w: first segment starts at seq %d but records after %d are needed",
			ErrCorrupt, segs[0].first, after)
	}
	expect := segs[0].first
	for i, sg := range segs {
		last := i == len(segs)-1
		if sg.first != expect {
			return st, fmt.Errorf("%w: segment %s starts at seq %d, want %d (missing segment?)",
				ErrCorrupt, sg.path, sg.first, expect)
		}
		data, err := os.ReadFile(sg.path)
		if err != nil {
			return st, err
		}
		if len(data) < len(segMagic) {
			if last {
				st.TornBytes += int64(len(data))
				break
			}
			return st, fmt.Errorf("%w: segment %s shorter than its magic", ErrCorrupt, sg.path)
		}
		if string(data[:len(segMagic)]) != segMagic {
			return st, fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, sg.path)
		}
		off := len(segMagic)
		for off < len(data) {
			seq, payload, n, perr := parseFrame(data[off:])
			if perr == nil && seq != expect {
				perr = fmt.Errorf("%w: seq %d where %d expected", ErrCorrupt, seq, expect)
			}
			if perr != nil {
				if last {
					st.TornBytes += int64(len(data) - off)
					off = len(data)
					break
				}
				return st, fmt.Errorf("%w: segment %s offset %d: %v", ErrCorrupt, sg.path, off, perr)
			}
			if seq > after {
				if err := fn(seq, payload); err != nil {
					return st, err
				}
				st.Records++
			}
			st.Last = seq
			expect = seq + 1
			off += n
		}
	}
	return st, nil
}
