// Package pinocchio is a Go implementation of PINOCCHIO, the
// probabilistic influence-based location-selection framework over
// moving objects of Wang et al. (TKDE 2016 / ICDE 2017).
//
// Given a set of moving objects (each a set of positions, e.g.
// check-ins), a set of candidate locations, a monotonically decreasing
// distance-based probability function PF and a threshold τ, the
// PRIME-LS problem asks for the candidate that influences the most
// objects, where an object is influenced when its cumulative
// probability 1 − Π(1 − PF(dist)) reaches τ.
//
// The package exposes the paper's algorithms directly:
//
//   - Select — PINOCCHIO-VO (Algorithm 3), the fastest exact solver;
//   - SelectPinocchio — PINOCCHIO (Algorithm 2), which additionally
//     yields the exact influence of every candidate;
//   - SelectNaive — the exhaustive NA baseline;
//   - TopK / RankAll — influence rankings for recommendation-style use.
//
// See the examples directory for runnable scenarios and DESIGN.md for
// the architecture and the reproduction of the paper's evaluation.
package pinocchio

import (
	"pinocchio/internal/core"
	"pinocchio/internal/dataset"
	"pinocchio/internal/geo"
	"pinocchio/internal/object"
	"pinocchio/internal/probfn"
)

// Point is a planar position (kilometres in the examples, but any
// consistent unit works as long as the probability function agrees).
type Point = geo.Point

// Rect is an axis-aligned rectangle (MBR).
type Rect = geo.Rect

// LatLon is a geographic coordinate; use NewProjection to map
// real-world data into the planar frame.
type LatLon = geo.LatLon

// Projection maps geographic coordinates to the planar frame.
type Projection = geo.Projection

// NewProjection returns a local equirectangular projection centered at
// origin.
func NewProjection(origin LatLon) *Projection { return geo.NewProjection(origin) }

// Object is a moving object: an ID plus its set of positions.
type Object = object.Object

// NewObject builds a moving object from its positions; it fails when
// positions is empty.
func NewObject(id int, positions []Point) (*Object, error) {
	return object.New(id, positions)
}

// ProbabilityFunc is the distance-based influence probability PF.
type ProbabilityFunc = probfn.Func

// PowerLawPF returns the paper's default check-in probability model
// Pr(d) = ρ·(d0/(d0+d))^λ. The paper's defaults are ρ=0.9, d0=1,
// λ=1.
func PowerLawPF(rho, d0, lambda float64) (ProbabilityFunc, error) {
	return probfn.NewPowerLaw(rho, d0, lambda)
}

// DefaultPF returns the default power-law PF (ρ=0.9, d0=1, λ=1).
func DefaultPF() ProbabilityFunc { return probfn.DefaultPowerLaw() }

// CustomPF adapts any monotone non-increasing probability function;
// its inverse is computed numerically over [0, maxDist].
func CustomPF(label string, fn func(d float64) float64, maxDist float64) ProbabilityFunc {
	return probfn.Inverted{ProbFn: fn, MaxDist: maxDist, Label: label}
}

// Problem is a PRIME-LS instance.
type Problem = core.Problem

// Result reports the selected location and work counters.
type Result = core.Result

// Stats holds the instrumentation counters of a run.
type Stats = core.Stats

// Ranked pairs a candidate index with its exact influence.
type Ranked = core.Ranked

// Select solves the PRIME-LS instance with PINOCCHIO-VO (Algorithm 3),
// the recommended solver: minMaxRadius pruning plus bound-ordered
// validation with early stopping.
func Select(p *Problem) (*Result, error) { return core.PinocchioVO(p) }

// SelectPinocchio solves with PINOCCHIO (Algorithm 2); slower than
// Select but Result.Influences holds the exact influence of every
// candidate.
func SelectPinocchio(p *Problem) (*Result, error) { return core.Pinocchio(p) }

// SelectNaive solves by exhaustive enumeration (the NA baseline).
func SelectNaive(p *Problem) (*Result, error) { return core.NA(p) }

// RankAll returns every candidate with its exact influence, sorted
// descending.
func RankAll(p *Problem) ([]Ranked, error) { return core.RankAll(p) }

// TopK returns the indices of the k most influential candidates.
func TopK(p *Problem, k int) ([]int, error) { return core.TopK(p, k) }

// MinMaxRadius exposes the paper's distance measure (Definition 5):
// the radius within which n positions guarantee influence at
// threshold tau, and outside which influence is impossible.
func MinMaxRadius(pf ProbabilityFunc, tau float64, n int) float64 {
	return object.MinMaxRadius(pf, tau, n)
}

// Dataset is a check-in workload (synthetic or loaded from CSV).
type Dataset = dataset.Dataset

// DatasetConfig parameterizes the synthetic check-in generator.
type DatasetConfig = dataset.Config

// FoursquareLike returns the generator preset calibrated to the
// paper's Foursquare (Singapore) dataset statistics.
func FoursquareLike() DatasetConfig { return dataset.FoursquareLike() }

// GowallaLike returns the generator preset calibrated to the paper's
// Gowalla (California) dataset statistics.
func GowallaLike() DatasetConfig { return dataset.GowallaLike() }

// GenerateDataset builds a deterministic synthetic check-in dataset.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// SelectTopT certifies the t most influential candidates (sorted by
// influence descending) without computing exact influence for the
// dominated rest — the top-t generalization of PINOCCHIO-VO.
func SelectTopT(p *Problem, t int) ([]Ranked, error) {
	ranked, _, err := core.PinocchioVOTopT(p, t)
	return ranked, err
}

// SelectParallel solves with the data-parallel PINOCCHIO across the
// given number of workers (0 selects GOMAXPROCS). Results are
// identical to SelectPinocchio.
func SelectParallel(p *Problem, workers int) (*Result, error) {
	return core.PinocchioParallel(p, workers)
}
